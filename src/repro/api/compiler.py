"""``compile()``: the single front door to Lancet planning.

Turns a workload -- a declarative :class:`~repro.api.scenario.Scenario`,
a built :class:`~repro.models.ModelGraph`, or a raw
:class:`~repro.ir.Program` -- into a :class:`~repro.api.plan.Plan`
artifact.  With a :class:`~repro.api.store.PlanStore` attached, compile
is a cache: a warm lookup returns a stored plan without constructing an
optimizer at all (zero cost-model evaluations), which is what makes
plans computed once reusable by every later process.

The function is split into two reusable layers so that higher-level
front ends (notably :class:`repro.serving.PlanServer`, which inserts
coalescing and nearest-signature steps between lookup and planning) can
share the exact same workload-identity and planning logic:

- :func:`resolve_workload` turns any accepted workload into a
  :class:`ResolvedWorkload` -- the canonical identity (source program,
  cluster, fingerprint, observed signatures) a store key is built from;
- :func:`plan_resolved` runs the optimizer over a resolved workload and
  wraps the result in a :class:`Plan`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

from ..core.lancet import LancetOptimizer
from ..ir import Program
from ..models import ModelGraph
from ..runtime.cluster import ClusterSpec
from ..runtime.device import COMPILED, FrameworkProfile
from .fingerprint import graph_fingerprint
from .plan import Plan, PlanError, PlanPolicy
from .scenario import Scenario
from .store import PlanStore


def _store_lookup(lookup, *args, **kwargs):
    """Run a store lookup, degrading store problems to a cache miss.

    A corrupt entry or one written under a newer schema (by another
    fleet member) must not make compilation impossible -- the planner
    can always recompute, and the subsequent ``put`` replaces the bad
    entry.  The problem is surfaced as a warning rather than swallowed;
    direct ``PlanStore.get`` / ``Plan.load`` callers still get the
    exception.
    """
    try:
        return lookup(*args, **kwargs)
    except PlanError as err:
        warnings.warn(
            f"plan store lookup failed ({err}); re-planning", stacklevel=3
        )
        return None


def _observed_signatures(program: Program, scenario: Scenario, cluster) -> dict | None:
    """The routing signatures a scenario's realization induces on a
    program (what the skew-aware planner conditions on)."""
    from ..runtime.simulate import SimulationConfig, observed_routing_signatures

    config = SimulationConfig(
        cluster=cluster,
        padded_a2a=False,
        routing=scenario.routing_model(),
    )
    return observed_routing_signatures(program, config) or None


@dataclass
class ResolvedWorkload:
    """A workload reduced to the canonical identity planning keys on.

    Produced by :func:`resolve_workload`; consumed by
    :func:`plan_resolved` and by the serving layer's lookup ladder
    (exact store key -> nearest signature bucket -> planner).
    """

    #: what the optimizer runs over (graph preferred: carries metadata)
    source: ModelGraph | Program
    cluster: ClusterSpec
    policy: PlanPolicy
    framework: FrameworkProfile
    #: structural fingerprint of the source program
    fingerprint: str
    #: per-layer routing signatures the plan will be conditioned on
    signatures: dict | None
    #: the declarative scenario, when the workload was one
    scenario: Scenario | None
    #: True when the scenario alone reproduces this workload (no
    #: cluster/signature overrides) -- only then may the result enter
    #: the store's scenario index
    scenario_pure: bool
    #: hybrid pipeline x expert parallel request (``{"num_stages",
    #: "microbatches", "schedule"}``, the :meth:`~repro.pipeline
    #: .StageMap.request_dict` shape) -- ``None`` for flat workloads.
    #: Folded into store keys; drives the staged planning branch.
    pipeline: dict | None = None

    @property
    def program(self) -> Program:
        return (
            self.source.program
            if isinstance(self.source, ModelGraph)
            else self.source
        )


def resolve_workload(
    workload: Scenario | ModelGraph | Program,
    cluster: ClusterSpec | None = None,
    *,
    policy: PlanPolicy | None = None,
    signatures: dict | None = None,
    framework: FrameworkProfile = COMPILED,
) -> ResolvedWorkload:
    """Reduce any accepted workload to its canonical planning identity.

    For a :class:`Scenario` this builds the graph, derives the cluster,
    and (under a skew-aware policy) observes the scenario's routing
    signatures; graphs/programs require an explicit ``cluster``.
    """
    policy = policy or PlanPolicy()
    scenario = workload if isinstance(workload, Scenario) else None
    # overrides make the result unreproducible from the scenario alone,
    # so such plans must never enter (or be served from) the scenario
    # index -- only the canonical fingerprint-keyed path applies
    scenario_pure = (
        scenario is not None and cluster is None and signatures is None
    )
    pipeline = None
    if scenario is not None:
        graph = scenario.build_graph()
        cluster = cluster or scenario.build_cluster()
        source: ModelGraph | Program = graph
        sig_cluster = cluster
        if scenario.staged:
            pipeline = {
                "num_stages": scenario.pipeline_stages,
                "microbatches": scenario.microbatches,
                "schedule": scenario.pipeline_schedule,
            }
            # the graph is built at stage-subgroup width, so signatures
            # must be observed on the subgroup cluster: an all-to-all
            # spans one stage's devices, never the whole cluster
            from ..pipeline.stage import _subcluster

            sig_cluster = _subcluster(
                cluster, 0, cluster.num_gpus // scenario.pipeline_stages
            )
        if signatures is None and policy.skew_aware:
            signatures = _observed_signatures(
                graph.program, scenario, sig_cluster
            )
    elif isinstance(workload, (ModelGraph, Program)):
        if cluster is None:
            raise TypeError(
                "compile(graph_or_program) requires an explicit cluster"
            )
        source = workload
    else:
        raise TypeError(
            f"workload must be a Scenario, ModelGraph, or Program; "
            f"got {type(workload).__name__}"
        )
    program = source.program if isinstance(source, ModelGraph) else source
    return ResolvedWorkload(
        source=source,
        cluster=cluster,
        policy=policy,
        framework=framework,
        fingerprint=graph_fingerprint(program),
        signatures=signatures,
        scenario=scenario,
        scenario_pure=scenario_pure,
        pipeline=pipeline,
    )


def _plan_resolved_staged(resolved: ResolvedWorkload, check: bool) -> Plan:
    """The staged planning branch: pick pipeline boundaries, optimize
    each stage against its own subgroup, reassemble, and wrap.

    The plan's program is the *reassembled per-microbatch* schedule (one
    flat program with every stage's optimized segments stitched back
    together); the predicted iteration time is the staged pipeline
    makespan over all microbatches, including p2p and the gradient-sync
    tail -- what an iteration of the staged workload actually costs.
    """
    from ..pipeline import plan_stages

    t0 = time.perf_counter()
    request = resolved.pipeline
    policy = resolved.policy
    hyper = policy.hyper_params()

    def optimizer_factory(stage_cluster):
        return LancetOptimizer(
            stage_cluster,
            framework=resolved.framework,
            hyper_params=hyper,
            enable_dw_schedule=policy.enable_dw_schedule,
            enable_partition=policy.enable_partition,
            defer_allreduce=policy.defer_allreduce,
            routing_signatures=resolved.signatures,
            enable_hierarchical_a2a=policy.enable_hierarchical_a2a,
        )

    routing = None
    if resolved.scenario is not None and policy.skew_aware:
        routing = resolved.scenario.routing_model()
    result = plan_stages(
        resolved.source,
        resolved.cluster,
        request["num_stages"],
        request["microbatches"],
        schedule=request["schedule"],
        optimizer_factory=optimizer_factory,
        framework=resolved.framework,
        routing=routing,
        padded_a2a=routing is None,
        check=check,
    )
    planner = {
        "compile_seconds": time.perf_counter() - t0,
        "stage_candidates": [
            {**c, "layer_counts": list(c["layer_counts"])}
            for c in result.candidates
        ],
        "stage_reports": result.stage_reports,
    }
    return Plan(
        program=result.program,
        cluster=resolved.cluster,
        policy=resolved.policy,
        fingerprint=resolved.fingerprint,
        predicted_iteration_ms=result.simulation.makespan,
        framework=resolved.framework,
        signatures=resolved.signatures,
        scenario=resolved.scenario,
        planner=planner,
        stage_map=result.stage_map,
    )


def plan_resolved(resolved: ResolvedWorkload, check: bool = True) -> Plan:
    """Run the optimizer over a resolved workload and wrap the result.

    This is the one place a :class:`~repro.core.LancetOptimizer` is
    constructed on behalf of the facade; everything above it (store
    lookups, coalescing, nearest-signature serving) is cache machinery.
    Staged workloads (``resolved.pipeline`` set) route through the
    pipeline boundary planner, which runs one optimizer per stage.
    """
    if resolved.pipeline is not None:
        return _plan_resolved_staged(resolved, check=check)
    t0 = time.perf_counter()
    optimizer = LancetOptimizer(
        resolved.cluster,
        framework=resolved.framework,
        hyper_params=resolved.policy.hyper_params(),
        enable_dw_schedule=resolved.policy.enable_dw_schedule,
        enable_partition=resolved.policy.enable_partition,
        defer_allreduce=resolved.policy.defer_allreduce,
        routing_signatures=resolved.signatures,
        enable_hierarchical_a2a=resolved.policy.enable_hierarchical_a2a,
    )
    optimized, report = optimizer.optimize(resolved.source, check=check)
    compile_seconds = time.perf_counter() - t0

    planner = report.summary_dict()
    planner["compile_seconds"] = compile_seconds
    return Plan(
        program=optimized,
        cluster=resolved.cluster,
        policy=resolved.policy,
        fingerprint=resolved.fingerprint,
        predicted_iteration_ms=report.predicted_iteration_ms,
        framework=resolved.framework,
        signatures=report.routing_signatures,
        scenario=resolved.scenario,
        planner=planner,
        report=report,
    )


def compile(
    workload: Scenario | ModelGraph | Program,
    cluster: ClusterSpec | None = None,
    *,
    policy: PlanPolicy | None = None,
    store: PlanStore | None = None,
    signatures: dict | None = None,
    framework: FrameworkProfile = COMPILED,
    check: bool = True,
) -> Plan:
    """Compile a workload into a :class:`~repro.api.plan.Plan`.

    Parameters
    ----------
    workload:
        A :class:`Scenario` (cluster and routing are derived from it),
        or a :class:`ModelGraph` / :class:`Program` with an explicit
        ``cluster``.
    cluster:
        Target cluster; required for graph/program workloads, optional
        override for scenarios.
    policy:
        Optimizer knobs (defaults to :class:`PlanPolicy`'s defaults:
        both passes on, skew-aware, flat collectives).
    store:
        Plan cache consulted before planning and updated after; a warm
        hit skips the planner entirely (``plan.from_store`` is True and
        no :class:`~repro.core.LancetOptimizer` is constructed).
    signatures:
        Explicit per-layer routing signatures to plan against
        (overrides the scenario-derived observation).
    framework:
        Execution-stack profile to price compute against.
    check:
        Validate the IR after each pass.
    """
    policy = policy or PlanPolicy()
    scenario = workload if isinstance(workload, Scenario) else None
    if (
        store is not None
        and scenario is not None
        and cluster is None
        and signatures is None
    ):
        # fast path: a pure scenario's store key is memoized, so a warm
        # lookup needs no graph build, no fingerprint, no observation
        plan = _store_lookup(
            store.lookup_scenario, scenario, policy, framework
        )
        if plan is not None:
            return plan

    resolved = resolve_workload(
        workload,
        cluster,
        policy=policy,
        signatures=signatures,
        framework=framework,
    )
    if store is not None:
        plan = _store_lookup(
            store.get,
            resolved.fingerprint,
            resolved.cluster,
            resolved.policy,
            resolved.framework,
            resolved.signatures,
            pipeline=resolved.pipeline,
        )
        if plan is not None:
            return plan

    plan = plan_resolved(resolved, check=check)
    if store is not None:
        store.put(plan, index_scenario=resolved.scenario_pure)
    return plan


def load_plan(path, materialize: bool = True) -> Plan:
    """Read a plan artifact from disk (alias of :meth:`Plan.load`)."""
    return Plan.load(path, materialize=materialize)
