"""Tests for the baseline framework schedules."""

import numpy as np
import pytest

from repro.testing import fresh_values
from repro import GPT2MoEConfig, build_training_graph, validate
from repro.baselines import (
    DeepSpeedBaseline,
    LancetFramework,
    RAFBaseline,
    TutelBaseline,
    make_framework,
)
from repro.runtime import ClusterSpec, run_program


@pytest.fixture(scope="module")
def setting():
    graph = build_training_graph(
        GPT2MoEConfig.gpt2_s_moe(num_layers=4), batch=8, seq=256, num_gpus=16
    )
    return graph, ClusterSpec.p4de(2)


class TestFactory:
    def test_known_names(self):
        for name, cls in [
            ("deepspeed", DeepSpeedBaseline),
            ("raf", RAFBaseline),
            ("tutel", TutelBaseline),
            ("lancet", LancetFramework),
        ]:
            assert isinstance(make_framework(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_framework("megatron")


class TestSimpleBaselines:
    def test_deepspeed_raf_unchanged_schedule(self, setting):
        graph, cluster = setting
        for fw in (DeepSpeedBaseline(), RAFBaseline()):
            res = fw.prepare(graph, cluster)
            assert res.program is graph.program
            assert res.padded_a2a

    def test_profiles_differ(self, setting):
        graph, cluster = setting
        ds = DeepSpeedBaseline().prepare(graph, cluster)
        raf = RAFBaseline().prepare(graph, cluster)
        assert ds.profile.launch_us > raf.profile.launch_us
        assert ds.profile.dispatch_mult > raf.profile.dispatch_mult


class TestTutel:
    def test_searches_degrees(self, setting):
        graph, cluster = setting
        res = TutelBaseline().prepare(graph, cluster)
        assert res.info["degree"] in (1, 2, 4, 8)
        validate(res.program)

    def test_capacity_dim_chunks(self, setting):
        graph, cluster = setting
        res = TutelBaseline().prepare(graph, cluster)
        degree = res.info["degree"]
        if degree == 1:
            pytest.skip("search picked no partitioning")
        chunked = [
            i
            for i in res.program.instructions
            if i.op == "all_to_all" and i.partition is not None
        ]
        assert chunked
        for i in chunked:
            assert i.partition[1] == degree
            assert not i.attrs["irregular"]  # padded capacity chunks

    def test_numeric_equivalence(self):
        """Tutel's capacity-split schedule is also mathematically exact."""
        from repro.models.init import init_device_values

        graph = build_training_graph(
            GPT2MoEConfig.tiny(), batch=8, seq=8, num_gpus=2
        )
        cluster = ClusterSpec.for_gpus("a100", 2)
        fw = TutelBaseline()
        program = fw._partitioned(graph, degree=2)
        validate(program)
        vals = init_device_values(graph, seed=0)
        base = run_program(graph.program, fresh_values(vals))
        out = run_program(program, fresh_values(vals))
        assert np.array_equal(base[0][graph.loss], out[0][graph.loss])

    def test_degree_capped_by_capacity(self):
        graph = build_training_graph(
            GPT2MoEConfig.tiny(capacity_factor=0.3), batch=2, seq=4, num_gpus=2
        )
        # capacity is tiny; high degrees must be rejected, not crash
        fw = TutelBaseline()
        cap = graph.program.type_of(
            next(
                i
                for i in graph.program.instructions
                if i.op == "all_to_all"
            ).inputs[0]
        ).shape[1]
        assert fw._partitioned(graph, degree=cap * 2) is None


class TestLancetFramework:
    def test_prepare(self, setting):
        graph, cluster = setting
        res = LancetFramework().prepare(graph, cluster)
        assert not res.padded_a2a
        assert res.info["optimization_seconds"] > 0
        validate(res.program)

    def test_ablation_flags_forwarded(self, setting):
        graph, cluster = setting
        res = LancetFramework(enable_partition=False).prepare(graph, cluster)
        assert res.info["report"].partition is None
