"""Tests for the Weight Gradient Computation Schedule Pass (Alg. 1)."""

import numpy as np
import pytest

from repro.testing import fresh_values
from repro.ir import validate, verify_schedulable
from repro.core import (
    CachingOpProfiler,
    CommCostModel,
    CostEstimator,
    WeightGradSchedulePass,
    legalize_order,
)
from repro.runtime import (
    COMPILED,
    SimulationConfig,
    UniformRoutingModel,
    run_program,
    simulate_program,
)


@pytest.fixture()
def costs(a100_16):
    return CostEstimator(
        CachingOpProfiler(gpu=a100_16.gpu, framework=COMPILED),
        CommCostModel(a100_16),
    )


@pytest.fixture()
def scheduled(tiny_graph, costs):
    p = tiny_graph.program.clone()
    pas = WeightGradSchedulePass(costs)
    p = pas.run(p)
    return p, pas


class TestScheduling:
    def test_result_is_valid_program(self, scheduled):
        p, _ = scheduled
        validate(p)

    def test_is_a_permutation(self, scheduled, tiny_graph):
        p, _ = scheduled
        assert {i.uid for i in p.instructions} == {
            i.uid for i in tiny_graph.program.instructions
        }

    def test_some_dw_moved(self, scheduled):
        _, pas = scheduled
        assert pas.report.num_dw_moved > 0
        assert pas.report.num_dw_moved <= pas.report.num_dw_total

    def test_assigned_dw_placed_after_their_a2a(self, scheduled):
        p, pas = scheduled
        pos = p.instr_index()
        for rec in pas.report.records:
            for dw_uid in rec.assigned_uids:
                assert pos[dw_uid] > pos[rec.a2a_uid]

    def test_forward_a2a_get_no_assignments(self, scheduled, tiny_graph):
        _, pas = scheduled
        fwd_uids = {
            i.uid
            for i in tiny_graph.program.instructions[: tiny_graph.forward_len]
            if i.op == "all_to_all"
        }
        for rec in pas.report.records:
            if rec.a2a_uid in fwd_uids:
                assert not rec.assigned_uids

    def test_each_dw_assigned_at_most_once(self, scheduled):
        _, pas = scheduled
        seen = []
        for rec in pas.report.records:
            seen.extend(rec.assigned_uids)
        assert len(seen) == len(set(seen))

    def test_planned_overlap_capped_by_a2a_time(self, scheduled):
        _, pas = scheduled
        for rec in pas.report.records:
            assert rec.planned_overlap_ms <= rec.a2a_ms + 1e-12

    def test_numeric_equivalence(self, scheduled, tiny_graph, tiny_values):
        """Reordering must not change any numeric result."""
        p, _ = scheduled
        base = run_program(tiny_graph.program, fresh_values(tiny_values))
        out = run_program(p, fresh_values(tiny_values))
        assert np.array_equal(base[0][tiny_graph.loss], out[0][tiny_graph.loss])
        for pid, gid in tiny_graph.program.grads.items():
            assert np.array_equal(base[0][gid], out[0][gid])

    def test_reduces_exposed_a2a_on_large_model(self, a100_16, costs):
        from repro import GPT2MoEConfig, build_training_graph

        g = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(), batch=8, seq=256, num_gpus=16
        )
        p = g.program.clone()
        pas = WeightGradSchedulePass(costs)
        p = pas.run(p)
        cfg = SimulationConfig(cluster=a100_16, routing=UniformRoutingModel())
        before = simulate_program(g.program, config=cfg)
        after = simulate_program(p, config=cfg)
        assert after.exposed_time_of({"all_to_all"}) < before.exposed_time_of(
            {"all_to_all"}
        )
        assert after.makespan < before.makespan

    def test_noop_without_dw(self, costs):
        from repro.ir import DType, Program, TensorType

        p = Program("nodw")
        x = p.add_input(TensorType((8, 8), DType.F16), "x")
        p.add("gelu", [x.id])
        out = WeightGradSchedulePass(costs).run(p)
        assert [i.op for i in out.instructions] == ["gelu"]


class TestLegalizeOrder:
    def test_keeps_desired_order_when_legal(self, tiny_graph):
        p = tiny_graph.program
        order = legalize_order(p, list(p.instructions))
        assert [i.uid for i in order] == [i.uid for i in p.instructions]

    def test_repairs_dependency_violations(self, tiny_graph):
        """Putting a consumer before its producer gets fixed."""
        p = tiny_graph.program
        desired = list(p.instructions)
        desired[1], desired[2] = desired[2], desired[1]
        order = legalize_order(p, desired)
        verify_schedulable(p, order)
