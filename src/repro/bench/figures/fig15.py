"""Figure 15: Lancet's optimization time.

Paper: optimization wall time for both models on 16/32/64 GPUs of each
cluster.  The partition pass dominates (the dW schedule pass is a fast
greedy); time depends mostly on the number of layers, not the number of
GPUs, because every device shares one computation graph.
"""

from __future__ import annotations

from ..formatting import format_table
from ..harness import Setting, run_setting
from .common import FigureResult


def run(
    models=("GPT2-S-MoE", "GPT2-L-MoE"),
    clusters=("v100", "a100"),
    gpu_counts=(16, 32, 64),
) -> FigureResult:
    rows = []
    for cluster in clusters:
        for model in models:
            for gpus in gpu_counts:
                m = run_setting(
                    Setting(
                        model=model,
                        cluster_kind=cluster,
                        num_gpus=gpus,
                        framework="lancet",
                    )
                )
                passes = m.info.get("pass_seconds", {})
                dw = passes.get("weight-grad-schedule", 0.0)
                part = passes.get("operator-partition", 0.0)
                rows.append(
                    {
                        "cluster": cluster,
                        "model": model,
                        "gpus": gpus,
                        "dw_pass_s": dw,
                        "partition_pass_s": part,
                        "total_s": m.info.get("prepare_seconds", dw + part),
                    }
                )

    table = format_table(
        ["Cluster", "Model", "GPUs", "dW pass (s)", "Partition pass (s)", "Total (s)"],
        [
            [
                r["cluster"],
                r["model"],
                r["gpus"],
                r["dw_pass_s"],
                r["partition_pass_s"],
                r["total_s"],
            ]
            for r in rows
        ],
        title="Fig. 15 - optimization time",
    )
    partition_dominates = all(
        r["partition_pass_s"] >= r["dw_pass_s"] for r in rows
    )
    by_model = {}
    for r in rows:
        by_model.setdefault(r["model"], []).append(r["total_s"])
    notes = {
        "partition_pass_dominates": partition_dominates,
        "paper": "dominated by the partition pass; below ~20 min; grows with layers",
    }
    if "GPT2-L-MoE" in by_model and "GPT2-S-MoE" in by_model:
        notes["larger_model_slower"] = sum(by_model["GPT2-L-MoE"]) > sum(
            by_model["GPT2-S-MoE"]
        )
    return FigureResult("fig15", "optimization time", rows, table, notes)
