"""Headline claims of the abstract: up to 77% less non-overlapped
communication and up to 1.3x end-to-end speedup."""

from conftest import run_figure
from repro.bench.figures import headline


def test_headline_claims(benchmark):
    result = run_figure(benchmark, headline.run)
    assert result.notes["max_comm_reduction_pct"] > 55.0
    assert 1.15 < result.notes["max_speedup"] < 1.6
