"""JSON codecs for the runtime specs a plan artifact embeds.

A serialized plan must be executable anywhere, so it carries the *full*
cluster and framework specification it was planned for (not just a
preset name): a plan compiled against a tweaked ``ClusterSpec`` replays
against exactly that spec.  Round-trips are field-exact -- every float
is reconstructed bit-for-bit.
"""

from __future__ import annotations

import dataclasses

from ..runtime.cluster import ClusterSpec
from ..runtime.device import FrameworkProfile, GPUSpec
from ..runtime.routing_model import RoutingSignature


def cluster_to_json(cluster: ClusterSpec) -> dict:
    # asdict recurses into the nested GPUSpec dataclass
    return dataclasses.asdict(cluster)


def cluster_from_json(obj: dict) -> ClusterSpec:
    gpu = GPUSpec(**obj["gpu"])
    rest = {k: v for k, v in obj.items() if k != "gpu"}
    return ClusterSpec(gpu=gpu, **rest)


def framework_to_json(framework: FrameworkProfile) -> dict:
    return dataclasses.asdict(framework)


def framework_from_json(obj: dict) -> FrameworkProfile:
    return FrameworkProfile(**obj)


def signature_to_json(sig: RoutingSignature) -> dict:
    obj = {"load": list(sig.load), "mean_send_bytes": sig.mean_send_bytes}
    if sig.hier_load is not None:
        obj["hier_load"] = list(sig.hier_load)
    if sig.expert_counts is not None:
        # count provenance (what makes a signature placement-remappable)
        # must survive the round-trip: a trainer-published plan's
        # signatures compare equal after reload
        obj["expert_counts"] = [list(row) for row in sig.expert_counts]
        obj["bytes_per_token"] = sig.bytes_per_token
    return obj


def signature_from_json(obj: dict) -> RoutingSignature:
    hier = obj.get("hier_load")
    counts = obj.get("expert_counts")
    return RoutingSignature(
        load=tuple(float(v) for v in obj["load"]),
        mean_send_bytes=float(obj.get("mean_send_bytes", 0.0)),
        hier_load=tuple(float(v) for v in hier) if hier is not None else None,
        expert_counts=(
            tuple(tuple(float(v) for v in row) for row in counts)
            if counts is not None
            else None
        ),
        bytes_per_token=float(obj.get("bytes_per_token", 0.0)),
    )


def signatures_to_json(signatures: dict | None) -> list | None:
    """Per-layer signature mapping as ``[[layer_key, signature], ...]``
    pairs (JSON objects cannot hold int keys)."""
    if not signatures:
        return None
    return [
        [key, signature_to_json(sig)]
        for key, sig in sorted(
            signatures.items(), key=lambda kv: (kv[0] is None, str(kv[0]))
        )
    ]


def signatures_from_json(obj: list | None) -> dict | None:
    if not obj:
        return None
    return {key: signature_from_json(so) for key, so in obj}
