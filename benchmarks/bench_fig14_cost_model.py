"""Fig. 14: cost-model prediction accuracy.

The paper reports 3.83% average error between predicted and measured
iteration time; the reproduction's error comes from the same mechanisms
(static-shape approximation of irregular all-to-alls, load imbalance).
"""

from conftest import run_figure
from repro.bench.figures import fig14


def test_fig14_cost_model(benchmark):
    result = run_figure(benchmark, fig14.run)
    assert result.notes["avg_pct_error"] < 12.0, (
        "cost model error should be small (paper: 3.83%)"
    )
    assert len(result.rows) >= 12  # aggregated over the full grid
    for row in result.rows:
        assert row["predicted_ms"] > 0
