"""Instructions of the Lancet IR.

Following the paper (Sec. 4), a model's training iteration is a *sequence of
instructions* ``I = [I1, ..., IN]``; each instruction has input tensors,
output tensors and an operator: ``In = (x^n, y^n, f^n)``.  Program order is
the execution order on each device (the executor issues instructions in
order onto their stream), so Lancet's passes optimize by *reordering* and
*rewriting* this sequence.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace


class InstrKind(enum.Enum):
    """Classification of instructions used by the scheduling passes.

    The dW schedule pass (paper Sec. 4) needs to tell *weight-gradient*
    computations (``DW``) apart from activation-gradient computations
    (``DX``): only the former are free to move relative to all-to-alls.
    """

    FORWARD = "forward"
    DX = "dx"
    DW = "dw"
    COMM = "comm"
    OPTIMIZER = "optimizer"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_instr_counter = itertools.count()


def ensure_uid_floor(floor: int) -> None:
    """Advance the global uid counter to at least ``floor``.

    Deserializing a program (see :mod:`repro.ir.serialize`) installs
    instructions with their original uids; the counter must clear them
    so instructions created afterwards can never collide.
    """
    global _instr_counter
    _instr_counter = itertools.count(max(next(_instr_counter), floor))


@dataclass(frozen=True)
class Instruction:
    """One IR instruction.

    Attributes
    ----------
    op:
        Name of the operator in the registry (:mod:`repro.ir.ops`).
    inputs / outputs:
        Value ids consumed / produced.
    attrs:
        Static operator attributes (e.g. ``num_heads``, ``capacity``).
    kind:
        Scheduling classification (forward / dX / dW / comm / optimizer).
    uid:
        Unique id, stable across reordering (used to track instructions
        through passes).
    partition:
        ``(index, parts)`` when this instruction is one chunk of a
        partitioned original, else ``None``.
    origin:
        uid of the unpartitioned instruction this chunk came from.
    """

    op: str
    inputs: tuple[int, ...]
    outputs: tuple[int, ...]
    attrs: dict = field(default_factory=dict)
    kind: InstrKind = InstrKind.FORWARD
    uid: int = field(default_factory=lambda: next(_instr_counter))
    partition: tuple[int, int] | None = None
    origin: int | None = None

    def with_(self, **changes) -> "Instruction":
        """Return a copy with the given fields replaced (fresh uid unless given)."""
        if "uid" not in changes:
            changes["uid"] = next(_instr_counter)
        return replace(self, **changes)

    @property
    def is_comm(self) -> bool:
        """Whether the instruction runs on the communication stream."""
        return self.kind == InstrKind.COMM

    @property
    def is_weight_grad(self) -> bool:
        """Whether this is a weight-gradient (dW) computation."""
        return self.kind == InstrKind.DW

    def __repr__(self) -> str:
        outs = ", ".join(f"%{o}" for o in self.outputs)
        ins = ", ".join(f"%{i}" for i in self.inputs)
        part = f" part={self.partition}" if self.partition else ""
        return f"{outs} = {self.op}({ins}) [{self.kind.value}{part}]"
