"""Skew sweep: uniform-approximation plan vs skew-aware plan (extension).

Not a paper figure.  Lancet's cost model prices every irregular
all-to-all with the uniform static-shape approximation (paper Sec. 3);
the skew-aware extension conditions the estimate on the *observed*
routing distribution (`CommCostModel.a2a_skewed_ms`), pricing the
collective at the bottleneck device's realized bytes.  This sweep
quantifies what that buys: across hot-expert intensities, both plans
are produced for the same program, then simulated per-device
(`simulate_cluster`) under the same realized routing.

The uniform plan mis-budgets its overlap in both directions -- capacity
clipping makes realized traffic cheaper than the padded estimate, while
hot-expert bottlenecks make the collective's completion later than the
mean -- so the skew-aware plan overlaps dW computation and chooses
partition ranges against the schedule the cluster will actually run.
"""

from __future__ import annotations

import dataclasses
import time

from ...core import LancetOptimizer
from ...runtime import (
    ClusterSpec,
    SimulationConfig,
    SyntheticRoutingModel,
    simulate_cluster,
    simulate_cluster_batch,
)
from ..formatting import format_table
from ..harness import model_by_name, paper_batch
from .common import FigureResult


def run(
    model: str = "GPT2-S-MoE",
    cluster_kind: str = "a100",
    num_gpus: int = 16,
    num_layers: int | None = 4,
    hot_boosts=(0.0, 0.3, 0.5, 0.7),
    concentration: float = 0.5,
    hot_experts: int = 1,
    seed: int = 1,
) -> FigureResult:
    """Sweep hot-expert intensity; plan uniform vs skew-aware each time."""
    from ...models import build_training_graph

    cfg = model_by_name(model)
    if num_layers is not None:
        cfg = dataclasses.replace(cfg, num_layers=num_layers)
    batch = paper_batch(cluster_kind, model)
    graph = build_training_graph(
        cfg, batch=batch, seq=512, num_gpus=num_gpus
    )
    cluster = ClusterSpec.for_gpus(cluster_kind, num_gpus)

    # the uniform-approximation plan ignores routing: compute it once
    opt_uniform = LancetOptimizer(cluster)
    prog_uniform, rep_uniform = opt_uniform.optimize(graph)

    # one re-optimizing planner across the sweep: every point after the
    # first re-plans warm off the persistent PlannerState, exactly as the
    # online loop does (plans are bit-identical to a cold optimizer's)
    opt_skew = LancetOptimizer(cluster)

    def sim_config(routing) -> SimulationConfig:
        return SimulationConfig(
            cluster=cluster,
            framework=opt_uniform.framework,
            padded_a2a=False,
            routing=routing,
        )

    rows = []
    routings = []
    for boost in hot_boosts:
        # vary only the hot-expert intensity; background concentration
        # is held fixed so the sweep is single-variable
        routing = SyntheticRoutingModel(
            seed=seed,
            concentration=concentration,
            hot_experts=hot_experts if boost > 0 else 0,
            hot_boost=boost,
        )
        routings.append(routing)

        t0 = time.perf_counter()
        signatures = opt_skew.observe_routing(graph, routing)
        prog_skew, rep_skew = opt_skew.optimize(graph)
        reopt_seconds = time.perf_counter() - t0

        hotness = max(
            (s.bottleneck for s in signatures.values()), default=1.0
        )
        # each skew-aware plan is a distinct program: one scalar sim each
        t_skew = simulate_cluster(
            prog_skew, config=sim_config(routing)
        ).makespan
        rows.append(
            {
                "hot_boost": boost,
                "hotness": hotness,
                "iter_skew_plan_ms": t_skew,
                "predicted_uniform_ms": rep_uniform.predicted_iteration_ms,
                "predicted_skew_ms": rep_skew.predicted_iteration_ms,
                "reopt_seconds": reopt_seconds,
                "warm_replan": rep_skew.warm_planned,
                "partitions_uniform": [
                    p.parts for p in rep_uniform.partition.plans
                ],
                "partitions_skew": [p.parts for p in rep_skew.partition.plans],
            }
        )

    # the uniform plan is ONE program under every realized routing: the
    # batchable shape.  Bit-identical to per-boost simulate_cluster calls.
    uniform_ms = simulate_cluster_batch(
        prog_uniform, configs=[sim_config(r) for r in routings]
    ).makespans
    for r, t_uniform in zip(rows, uniform_ms):
        r["iter_uniform_plan_ms"] = float(t_uniform)
        r["speedup"] = r["iter_uniform_plan_ms"] / r["iter_skew_plan_ms"]

    table = format_table(
        ["Hot boost", "Hotness", "Unif plan ms", "Skew plan ms", "Speedup",
         "Pred skew ms", "Reopt s"],
        [
            [
                r["hot_boost"],
                r["hotness"],
                r["iter_uniform_plan_ms"],
                r["iter_skew_plan_ms"],
                r["speedup"],
                r["predicted_skew_ms"],
                r["reopt_seconds"],
            ]
            for r in rows
        ],
        title=f"Skew sweep: uniform vs skew-aware plan ({model}, "
        f"{cluster_kind}, {num_gpus} GPUs)",
    )
    notes = {
        "max_hotness": max(r["hotness"] for r in rows),
        "max_speedup": max(r["speedup"] for r in rows),
        # planner-latency observability: how the re-planning optimizer's
        # caches behaved over the sweep (hits/misses/evictions)
        "planner_cache_stats": opt_skew.cache_stats(),
        # lower-is-better gates for the CI regression check
        "regression_metrics": {
            f"skew_plan_ms@boost={r['hot_boost']}": r["iter_skew_plan_ms"]
            for r in rows
        },
    }
    return FigureResult(
        "skew_sweep",
        "uniform-approximation vs skew-aware plan across hot-expert "
        "intensities",
        rows,
        table,
        notes,
    )
