"""Per-figure experiment runners (one module per paper figure)."""

from . import (
    fault_recovery,
    fig02,
    fig06,
    fig11,
    fig13,
    fig14,
    fig15,
    fig16,
    headline,
    imbalance,
    opt_time,
    pipeline,
    placement,
    plan_serving,
    sim_throughput,
    skew_sweep,
    topology_sweep,
)
from .common import FigureResult

#: figure id -> callable returning a FigureResult (fig12 is fig11 with
#: the Batch Prioritized gate, as in the paper; "imbalance" is an
#: extension: the per-device load-skew scenario family, "skew_sweep"
#: compares uniform vs skew-aware plans across hotness, "topology"
#: compares flat vs hierarchical (2-hop) all-to-all plans, "faults"
#: runs the ISSUE 8 chaos drills over the fault-injection stack,
#: "placement" gates the ISSUE 9 expert placement optimizer, and
#: "pipeline" gates the ISSUE 10 staged-pipeline planner)
ALL_FIGURES = {
    "faults": fault_recovery.run,
    "fig02": fig02.run,
    "fig06": fig06.run,
    "fig11": lambda **kw: fig11.run(gate="switch", **kw),
    "fig12": lambda **kw: fig11.run(gate="bpr", **kw),
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "headline": headline.run,
    "imbalance": imbalance.run,
    "opt_time": opt_time.run,
    "pipeline": pipeline.run,
    "placement": placement.run,
    "plan_serving": plan_serving.run,
    "sim_throughput": sim_throughput.run,
    "skew_sweep": skew_sweep.run,
    "topology": topology_sweep.run,
}

__all__ = ["ALL_FIGURES", "FigureResult"]
