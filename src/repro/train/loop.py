"""Multi-step training driver over the numeric executor.

Runs real (small-scale) training iterations of a model graph on the
simulated multi-device runtime: feeds synthetic batches, executes the IR
numerically, and carries updated parameters / momentum into the next
step.  Works with any schedule -- original or Lancet-optimized -- which
is how the examples demonstrate that optimization leaves the training
trajectory bit-for-bit unchanged.

:class:`ReoptimizingTrainer` closes the loop between execution and
planning: each step it reads the gate's *observed* dispatch counts from
the numeric run, summarizes them as per-layer routing signatures,
measures drift against the signatures the current schedule was optimized
for, and re-runs :class:`~repro.core.LancetOptimizer` (with a
signature-keyed plan cache) when the workload has shifted enough that
the plan is stale.  Because Lancet's transformations are numerically
exact, swapping schedules mid-training leaves the trajectory
bit-for-bit unchanged -- only the (simulated) iteration time moves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..api.plan import Plan, PlanPolicy
from ..core.cache import LRUCache
from ..ir import Program
from ..models.gpt2_moe import ModelGraph
from ..models.init import init_param_values
from ..runtime.executor import DeviceEnv, NumericExecutor
from ..runtime.routing_model import RoutingSignature
from .data import SyntheticCorpus


def _check_plan_matches(plan: Plan, graph: ModelGraph) -> None:
    """Refuse a plan compiled for a different graph.

    A mismatched plan would install a wrong (or crashing) schedule and
    -- worse, with a shared store -- publish re-plans under the wrong
    fingerprint, poisoning every other trainer's cache.
    """
    from ..api.fingerprint import graph_fingerprint

    actual = graph_fingerprint(graph.program)
    if plan.fingerprint != actual:
        raise ValueError(
            f"plan was compiled for a different graph "
            f"(plan fingerprint {plan.fingerprint[:23]}..., "
            f"this graph {actual[:23]}...); re-compile for this workload"
        )


@dataclass
class StepResult:
    """Outcome of one training step."""

    step: int
    losses: list[float]

    @property
    def mean_loss(self) -> float:
        return float(np.mean(self.losses))


class Trainer:
    """Step-by-step numeric training of a (possibly optimized) program.

    Parameters
    ----------
    graph:
        The built model graph (provides metadata: inputs, loss, devices).
    program:
        The schedule to execute; defaults to ``graph.program``.  Pass a
        Lancet-optimized program -- or a compiled
        :class:`~repro.api.Plan` artifact -- to train with the optimized
        schedule.
    seed:
        Controls parameter init and the synthetic corpus.
    parallel:
        Run per-device kernel segments concurrently (bit-identical to
        serial; see :class:`~repro.runtime.executor.NumericExecutor`).
        ``None`` auto-enables on multi-core hosts.
    """

    def __init__(
        self,
        graph: ModelGraph,
        program: Program | Plan | None = None,
        seed: int = 0,
        lr_corpus_alpha: float = 1.1,
        parallel: bool | None = None,
    ) -> None:
        self.graph = graph
        if isinstance(program, Plan):
            _check_plan_matches(program, graph)
            program = program.program
        self.program = program if program is not None else graph.program
        self.g = graph.num_gpus
        self.corpus = SyntheticCorpus(
            vocab_size=graph.cfg.vocab_size, zipf_alpha=lr_corpus_alpha, seed=seed
        )
        self.executor = NumericExecutor(self.program, self.g, parallel=parallel)
        self.state: list[dict[int, np.ndarray]] = init_param_values(graph, seed)
        self._updated = self._update_map()
        self.history: list[StepResult] = []

    def _update_map(self) -> dict[int, tuple[int, int, int]]:
        """param id -> (new w id, momentum id, new momentum id)."""
        out = {}
        for ins in self.program.instructions:
            if ins.op == "sgd_update":
                w, _g, m = ins.inputs
                w2, m2 = ins.outputs
                out[w] = (w2, m, m2)
        return out

    def step(self) -> StepResult:
        """Run one training iteration across all simulated devices."""
        step_idx = len(self.history)
        batches = self.corpus.device_batches(
            self.g, self.graph.batch, self.graph.seq, step=step_idx
        )
        ids_vid, labels_vid = self.program.inputs[:2]
        envs = []
        for d in range(self.g):
            vals = dict(self.state[d])
            vals[ids_vid], vals[labels_vid] = batches[d]
            envs.append(vals)
        results = self.executor.run(self.executor.make_envs(envs))
        self._observe_step(results)

        losses = [float(env[self.graph.loss]) for env in results]
        # carry updated params and momentum into the next step
        for d, env in enumerate(results):
            new_state = {}
            for pid, (w2, m, m2) in self._updated.items():
                new_state[pid] = env[w2]
                new_state[m] = env[m2]
            # keep params that have no update instruction (frozen)
            for pid in self.graph.program.params:
                if pid not in new_state:
                    new_state[pid] = env[pid]
            self.state[d] = new_state
        result = StepResult(step=step_idx, losses=losses)
        self.history.append(result)
        return result

    def _observe_step(self, results: list[DeviceEnv]) -> None:
        """Hook: inspect the finished step's device environments before
        they are discarded (overridden by :class:`ReoptimizingTrainer`
        to read the gate's dispatch counts)."""

    def run(self, steps: int) -> list[StepResult]:
        """Run several steps; returns the per-step results."""
        return [self.step() for _ in range(steps)]

    def loss_curve(self) -> list[float]:
        """Mean loss per executed step."""
        return [r.mean_loss for r in self.history]


@dataclass
class ReoptimizationEvent:
    """Record of one schedule re-optimization (or cache reuse)."""

    step: int
    drift: float
    cache_hit: bool
    #: wall time of the optimizer run (0.0 on a plan-cache hit)
    wall_seconds: float
    predicted_ms: float
    signature_key: tuple
    #: whether the partition planner reused its warm-start state
    #: (False on plan-cache hits: the optimizer never ran)
    warm_start: bool = False
    #: whether the re-plan came out of the shared :class:`PlanStore`
    #: (another process -- or an earlier run -- already planned it)
    store_hit: bool = False


@dataclass
class FaultReplanEvent:
    """Record of one failure-aware re-plan (fault onset or recovery).

    Unlike :class:`ReoptimizationEvent` (routing drift: same cluster,
    new signatures), a fault re-plan retargets the *cluster model*
    itself -- and installing the new schedule is a priced decision:
    migrating redistributes parameters, so the steady-state win over
    :attr:`~ReoptimizingTrainer.migration_horizon_steps` iterations
    must beat the one-off :attr:`migration_cost_ms`.
    """

    step: int
    #: what triggered the re-plan: ``"fault"`` or ``"recovery"``
    trigger: str
    #: estimated per-device slowdowns the re-plan targeted
    #: (``{}`` = fully recovered, re-planning back to nominal)
    slowdowns: dict
    #: name of the :class:`~repro.runtime.cluster.ClusterSpec` the new
    #: plan was compiled against
    cluster: str
    #: predicted iteration time of the *old* schedule on that cluster
    predicted_stale_ms: float
    #: predicted iteration time of the re-planned schedule on it
    predicted_ms: float
    #: one-off migration cost (parameter redistribution, priced as one
    #: full all-reduce of the parameters on the target cluster)
    migration_cost_ms: float
    #: whether the new schedule was installed (win beat migration cost)
    migrated: bool
    wall_seconds: float

    @property
    def win_ms(self) -> float:
        """Steady-state per-iteration win of the re-planned schedule."""
        return self.predicted_stale_ms - self.predicted_ms


class ReoptimizingTrainer(Trainer):
    """Trainer that re-plans the schedule as the routing shifts.

    Parameters
    ----------
    graph:
        The model graph to train.
    optimizer:
        A configured :class:`~repro.core.LancetOptimizer`; its cost
        estimator is re-targeted at each new routing observation (the
        prediction caches key on the signature, so this is safe).
    drift_threshold:
        Re-optimize when any layer's observed signature drifts more than
        this from the signature the current plan was optimized for
        (see :meth:`RoutingSignature.drift_from`).
    cache_digits:
        Quantization used for plan-cache keys: realizations whose loads
        round to the same values reuse the cached schedule instead of
        paying the optimizer wall time again.
    plan_cache_size:
        LRU bound of the signature-keyed plan cache.  A long run visits
        an unbounded stream of distinct signatures, so the cache must be
        bounded; hits/misses/evictions are exposed via
        :attr:`plan_cache_stats`.
    plan:
        Optional pre-compiled :class:`~repro.api.Plan` to start from
        (e.g. a :class:`~repro.api.PlanStore` warm load): the initial
        optimizer run is skipped and the plan's schedule, prediction,
        and routing signatures are installed directly.
    store:
        Optional shared :class:`~repro.api.PlanStore`.  Consulted
        (after the in-memory cache) before every re-optimization --
        another process may already have planned this signature bucket
        -- and every fresh re-plan is published back, so a fleet of
        trainers amortizes planning work.
    server:
        Optional :class:`~repro.serving.PlanServer`.  The trainer reads
        through the server's store and publishes every fresh re-plan
        via :meth:`~repro.serving.PlanServer.publish`, so the server's
        memory cache (and hence every other client of that server) is
        warm for the new signature bucket the moment the re-plan lands.
        Implies ``store=server.store`` when no store is given.
    fault_detector:
        Optional :class:`~repro.faults.StragglerDetector`.  Feed it
        observed per-device compute times via
        :meth:`observe_device_times`; when it flags a *persistent*
        degradation (as opposed to the transient routing drift the
        drift loop handles), the trainer re-plans against the degraded
        :class:`~repro.runtime.cluster.ClusterSpec` and prices the
        migration before swapping schedules.  ``None`` (the default)
        disables fault handling entirely -- the fault-free path is
        bit-identical to a trainer without this feature.
    migration_horizon_steps:
        How many future iterations a fault re-plan (or an expert
        migration) is amortized over when pricing: the change is
        installed iff ``win_ms * migration_horizon_steps >
        migration_cost_ms``.
    placement_optimizer:
        Optional :class:`~repro.placement.PlacementOptimizer`.  When
        set, every drift-triggered re-plan first searches for a better
        expert placement under the observed dispatch counts and prices
        the switch (weight-transfer cost vs. steady-state bottleneck-a2a
        win over ``migration_horizon_steps``), emitting a
        :class:`~repro.placement.MigrationEvent` either way; accepted
        placements are installed into the Lancet optimizer (signatures
        are remapped before pricing) and qualify the plan cache/store
        keys.  Requires the placement optimizer's cluster to span the
        same device count as the numeric run (layers observed at a
        different width are skipped).  ``None`` (the default) disables
        placement entirely -- the control loop is unchanged.
    expert_weight_bytes:
        Per-expert parameter bytes used to price placement migrations;
        defaults to the graph's expert FFN size (two ``hidden x
        ffn_hidden`` matrices at f32).
    """

    def __init__(
        self,
        graph: ModelGraph,
        optimizer,
        drift_threshold: float = 0.05,
        cache_digits: int = 2,
        plan_cache_size: int = 16,
        seed: int = 0,
        lr_corpus_alpha: float = 1.1,
        parallel: bool | None = None,
        plan: Plan | None = None,
        store=None,
        server=None,
        fault_detector=None,
        migration_horizon_steps: int = 50,
        placement_optimizer=None,
        expert_weight_bytes: float | None = None,
    ) -> None:
        self.optimizer = optimizer
        #: the healthy-cluster optimizer; :attr:`optimizer` is swapped
        #: to a degraded-target twin while a fault is flagged and back
        #: here on recovery
        self._nominal_optimizer = optimizer
        self.fault_detector = fault_detector
        self.migration_horizon_steps = migration_horizon_steps
        self.fault_events: list = []
        self.recovery_events: list = []
        self.fault_replans: list[FaultReplanEvent] = []
        self.placement_optimizer = placement_optimizer
        if expert_weight_bytes is None:
            # two [hidden, ffn_hidden] matrices per expert FFN, f32
            expert_weight_bytes = (
                2.0 * graph.cfg.hidden * graph.cfg.ffn_hidden * 4.0
            )
        self.expert_weight_bytes = float(expert_weight_bytes)
        #: expert placement the current schedule assumes
        #: (``{layer: ExpertPlacement}`` map; ``None`` = identity layout)
        self._placements = getattr(optimizer, "placement", None)
        #: telemetry of every priced placement-switch decision
        self.migration_events: list = []
        self.drift_threshold = drift_threshold
        self.cache_digits = cache_digits
        self.server = server
        if store is None and server is not None:
            store = server.store
        self.store = store
        if plan is not None:
            _check_plan_matches(plan, graph)
            if plan.cluster != optimizer.cluster:
                raise ValueError(
                    f"plan was compiled for cluster {plan.cluster.name}, "
                    f"but the optimizer targets {optimizer.cluster.name}"
                )
            program = plan.program
            predicted = plan.predicted_iteration_ms
            initial_signatures = dict(plan.signatures or {})
            self._fingerprint = plan.fingerprint
        else:
            # initial schedule: optimized for the uniform approximation
            # (no routing has been observed yet)
            optimizer.set_routing_signatures(None)
            program, report = optimizer.optimize(graph)
            predicted = report.predicted_iteration_ms
            initial_signatures = {}
            self._fingerprint = None
        super().__init__(
            graph,
            program=program,
            seed=seed,
            lr_corpus_alpha=lr_corpus_alpha,
            parallel=parallel,
        )
        #: signatures the *current* schedule was optimized for
        self.plan_signatures: dict[object, RoutingSignature] = initial_signatures
        self.predicted_ms = predicted
        #: plan cache: quantized signature key -> (program, predicted_ms),
        #: LRU-bounded (signatures form an unbounded key stream)
        self._plan_cache: LRUCache = LRUCache(
            plan_cache_size, name="plan-cache"
        )
        self.events: list[ReoptimizationEvent] = []
        self._observed: dict[object, RoutingSignature] = {}
        self._routing_vids = self._find_routing_values()

    # -- routing observation ---------------------------------------------------

    def _find_routing_values(self) -> dict[object, list[int]]:
        """Map each MoE layer to the output value ids of its gate
        instructions in the *current* program (``routing`` ops, or the
        ``routing_partial`` chunks a partitioned schedule splits them
        into)."""
        layer_of_uid = {ml.routing_uid: ml.layer for ml in self.graph.moe_layers}
        by_layer: dict[object, list[int]] = {}
        for ins in self.program.instructions:
            if ins.op not in ("routing", "routing_partial"):
                continue
            layer = layer_of_uid.get(ins.uid)
            if layer is None and ins.origin is not None:
                layer = layer_of_uid.get(ins.origin)
            if layer is None:
                continue
            by_layer.setdefault(layer, []).append(ins.outputs[0])
        return by_layer

    def _observe_step(self, results: list[DeviceEnv]) -> None:
        """Read the realized dispatch counts of every MoE layer from the
        step's routing info values -- the simulation counterpart of
        reading the gate's dispatch counters on real hardware."""
        h_bytes = float(self.graph.cfg.hidden) * 2.0  # f16 activations
        # attach the cluster topology so observed signatures also carry
        # the 2-hop phase loads (lets re-plans pick flat vs hierarchical
        # per a2a); skipped when the numeric run is smaller than the
        # modelled cluster
        topo = self.optimizer.cluster.topology
        if topo.num_gpus != self.g:
            topo = None
        self._observed = {}
        for layer, vids in self._routing_vids.items():
            counts = np.stack(
                [
                    np.sum([env[v].expert_counts() for v in vids], axis=0)
                    for env in results
                ]
            )
            self._observed[layer] = RoutingSignature.from_counts(
                counts, bytes_per_token=h_bytes, topology=topo
            )

    # -- the control loop ------------------------------------------------------

    def routing_drift(self) -> float:
        """Max drift of the latest observation vs the current plan's
        signatures (uniform where the plan has no entry for a layer)."""
        drift = 0.0
        for layer, sig in self._observed.items():
            ref = self.plan_signatures.get(
                layer, RoutingSignature.uniform(sig.num_devices)
            )
            drift = max(drift, sig.drift_from(ref))
        return drift

    def _signature_key(self) -> tuple:
        return tuple(
            (layer, sig.key(self.cache_digits))
            for layer, sig in sorted(self._observed.items())
        )

    def _policy(self) -> PlanPolicy:
        """The plan-store policy identity of this trainer's optimizer.

        Every knob that shapes the resulting schedule must be part of
        the identity, or trainers configured differently would alias to
        one store entry and install each other's schedules.
        """
        opt = self.optimizer
        return PlanPolicy(
            enable_dw_schedule=opt.enable_dw_schedule,
            enable_partition=opt.enable_partition,
            defer_allreduce=opt.defer_allreduce,
            enable_hierarchical_a2a=opt.enable_hierarchical_a2a,
            skew_aware=True,
            max_partitions=opt.hyper_params.max_partitions,
            group_ms=opt.hyper_params.group_ms,
            max_range_groups=opt.hyper_params.max_range_groups,
        )

    def _ensure_fingerprint(self) -> str:
        """Structural fingerprint of the source graph (computed once)."""
        if self._fingerprint is None:
            from ..api.fingerprint import graph_fingerprint

            self._fingerprint = graph_fingerprint(self.graph.program)
        return self._fingerprint

    def _store_get(self):
        """Warm plan for the current observation from the shared store.

        Store problems (corrupt entry, incompatible schema written by a
        newer build in the fleet) degrade to a cache miss -- the trainer
        can always re-plan, so a shared-cache read failure must never
        abort training.
        """
        if self.store is None:
            return None
        from ..api.plan import PlanError

        try:
            plan = self.store.get(
                self._ensure_fingerprint(),
                self.optimizer.cluster,
                self._policy(),
                self.optimizer.framework,
                dict(self._observed),
                placement=self._placements,
            )
            if plan is not None:
                plan.program  # materialize now: decode failures = miss
            return plan
        except PlanError:
            return None

    def _store_put(self, program: Program, report) -> None:
        """Publish a fresh re-plan so other trainers skip the planner."""
        if self.store is None and self.server is None:
            return
        plan = Plan(
            program=program,
            cluster=self.optimizer.cluster,
            policy=self._policy(),
            fingerprint=self._ensure_fingerprint(),
            predicted_iteration_ms=report.predicted_iteration_ms,
            framework=self.optimizer.framework,
            signatures=dict(self._observed),
            planner=report.summary_dict(),
            placement=self._placements,
        )
        if self.server is not None:
            # through the server: also lands in its memory cache, so
            # every other client is warm for this bucket immediately
            self.server.publish(plan)
        else:
            self.store.put(plan)

    def step(self) -> StepResult:
        result = super().step()
        drift = self.routing_drift()
        if drift <= self.drift_threshold or not self._observed:
            return result
        self._maybe_migrate_placement(result.step)
        self._replan(result.step, drift)
        return result

    def _replan(self, step: int, drift: float) -> None:
        """Re-plan the schedule for the current observation (cache ->
        store -> optimizer), install it, and record the event."""
        key = self._signature_key()
        # cache keys carry the active planning target: a schedule
        # compiled for a degraded cluster must never be served once the
        # trainer has re-targeted the healthy one (and vice versa) --
        # and the active placement, for the same reason
        from ..placement import placement_map_fingerprint

        cache_key = (
            self.optimizer.cluster.name,
            placement_map_fingerprint(self._placements),
        ) + key
        cached = self._plan_cache.get(cache_key)
        warm = False
        store_hit = False
        if cached is not None:
            program, predicted = cached
            wall = 0.0
        else:
            stored = self._store_get()
            if stored is not None:
                # another process (or an earlier run) already planned
                # this signature bucket: reuse its schedule verbatim
                program, predicted = stored.program, stored.predicted_iteration_ms
                wall = 0.0
                store_hit = True
            else:
                t0 = time.perf_counter()
                self.optimizer.set_routing_signatures(dict(self._observed))
                # the optimizer re-plans incrementally: its PlannerState
                # carries every signature-independent DP table over from
                # the previous plan, so only the drifted pricing is redone
                program, report = self.optimizer.optimize(self.graph)
                wall = time.perf_counter() - t0
                predicted = report.predicted_iteration_ms
                warm = report.warm_planned
                self._store_put(program, report)
            self._plan_cache.put(cache_key, (program, predicted))
        self._install_program(program, predicted)
        self.plan_signatures = dict(self._observed)
        self.events.append(
            ReoptimizationEvent(
                step=step,
                drift=drift,
                cache_hit=cached is not None,
                wall_seconds=wall,
                predicted_ms=predicted,
                signature_key=key,
                warm_start=warm,
                store_hit=store_hit,
            )
        )

    # -- expert placement migration ---------------------------------------------

    def _maybe_migrate_placement(self, step: int) -> None:
        """Search for a better expert placement under the latest observed
        dispatch counts and switch iff the migration prices in.

        One joint decision across all observed MoE layers: the wins and
        weight-transfer costs are summed, mirroring how an actual
        migration would batch every layer's transfers into one step.  A
        :class:`~repro.placement.MigrationEvent` is recorded whether or
        not the switch is taken (``layer=None``, expert ids as
        ``(layer, expert)`` pairs).
        """
        if self.placement_optimizer is None or not self._observed:
            return
        from ..placement import (
            ExpertPlacement,
            MigrationEvent,
            migration_cost_ms,
            placement_for,
        )

        popt = self.placement_optimizer
        g = popt.cluster.num_gpus
        before_total = after_total = transfer_ms = 0.0
        candidates: dict = {}
        moved: list = []
        replicated: list = []
        changed = False
        for layer, sig in sorted(
            self._observed.items(), key=lambda kv: str(kv[0])
        ):
            if sig.expert_counts is None:
                continue
            counts = np.asarray(sig.expert_counts)
            if counts.shape[0] != g:
                # observed at a different width than the placement
                # cluster models (e.g. small numeric run, big modelled
                # cluster): placement cannot be priced for this layer
                continue
            current = placement_for(self._placements, layer)
            if current is None:
                current = ExpertPlacement.identity(counts.shape[1], g)
            bpt = sig.bytes_per_token or 1.0
            before_ms = popt.cost_ms(current, counts, bpt)
            result = popt.optimize(counts, bpt, start=current)
            candidate = result.placement
            before_total += before_ms
            after_total += result.bottleneck_ms
            candidates[layer] = candidate
            if candidate != current:
                changed = True
                transfer_ms += migration_cost_ms(
                    current, candidate, popt.cluster, self.expert_weight_bytes
                )
                moved.extend(
                    (layer, e) for e in candidate.moved_experts(current)
                )
            replicated.extend(
                (layer, e) for e in candidate.replicated_experts
            )
        if not changed:
            return
        win = before_total - after_total
        migrated = win * self.migration_horizon_steps > transfer_ms
        self.migration_events.append(
            MigrationEvent(
                step=step,
                layer=None,
                moved_experts=tuple(moved),
                replicated_experts=tuple(replicated),
                bottleneck_before_ms=before_total,
                bottleneck_after_ms=after_total,
                migration_cost_ms=transfer_ms,
                horizon_steps=self.migration_horizon_steps,
                migrated=migrated,
            )
        )
        if migrated:
            if all(p.is_identity for p in candidates.values()):
                self._placements = None
            else:
                self._placements = dict(candidates)
            # plans from here on price against the remapped signatures
            self.optimizer.set_placement(self._placements)

    # -- trace replay ------------------------------------------------------------

    def observe_dispatch_counts(
        self, counts_by_layer: dict, bytes_per_token: float | None = None
    ) -> None:
        """Install externally recorded dispatch counts as the latest
        routing observation (``{layer: [devices, experts] counts}``) --
        the seam trace replay and real-hardware gate counters share with
        the numeric executor's own observation path."""
        if bytes_per_token is None:
            bytes_per_token = float(self.graph.cfg.hidden) * 2.0
        topo = self.optimizer.cluster.topology
        self._observed = {}
        for layer, counts in counts_by_layer.items():
            counts = np.asarray(counts)
            t = topo if topo.num_gpus == counts.shape[0] else None
            self._observed[layer] = RoutingSignature.from_counts(
                counts, bytes_per_token=bytes_per_token, topology=t
            )

    def replay_observation(
        self, counts_by_layer: dict, bytes_per_token: float | None = None
    ) -> float:
        """Drive one tick of the re-planning control loop from recorded
        dispatch counts, without executing a training step.

        Runs the exact drift -> placement-migration -> re-plan sequence
        :meth:`step` runs after a numeric step; returns the measured
        drift.  This is what replays a recorded routing trace through
        the trainer (the ExpertMigration-style drill).
        """
        step = len(self.history)
        self.observe_dispatch_counts(counts_by_layer, bytes_per_token)
        drift = self.routing_drift()
        if drift <= self.drift_threshold or not self._observed:
            return drift
        self._maybe_migrate_placement(step)
        self._replan(step, drift)
        return drift

    # -- failure-aware re-planning ---------------------------------------------

    def observe_device_times(self, device_times_ms) -> list[FaultReplanEvent]:
        """Feed one step's observed per-device compute times (e.g.
        :meth:`~repro.runtime.timeline.ClusterTimeline
        .per_device_compute_ms`) to the straggler detector.

        Transient blips are absorbed by the detector's EWMA + patience;
        only *persistent* degradation (or recovery from one) triggers a
        fault re-plan.  Returns the :class:`FaultReplanEvent` records of
        any re-plans this observation triggered (usually empty).
        """
        if self.fault_detector is None:
            raise ValueError(
                "no fault_detector configured; pass a StragglerDetector "
                "to ReoptimizingTrainer(fault_detector=...)"
            )
        step = max(0, len(self.history) - 1)
        faults, recoveries = self.fault_detector.observe(
            step, device_times_ms
        )
        self.fault_events.extend(faults)
        self.recovery_events.extend(recoveries)
        if not faults and not recoveries:
            return []
        trigger = "fault" if faults else "recovery"
        return [self._fault_replan(step, trigger, faults, recoveries)]

    def _optimizer_for(self, cluster):
        """A twin of the nominal optimizer targeting another cluster
        (same ablation switches and hyper-params -- the plan-store
        policy identity must survive the retarget)."""
        from ..core.lancet import LancetOptimizer

        base = self._nominal_optimizer
        return LancetOptimizer(
            cluster,
            framework=base.framework,
            hyper_params=base.hyper_params,
            enable_dw_schedule=base.enable_dw_schedule,
            enable_partition=base.enable_partition,
            defer_allreduce=base.defer_allreduce,
            enable_hierarchical_a2a=base.enable_hierarchical_a2a,
        )

    def _fault_replan(
        self, step: int, trigger: str, faults, recoveries
    ) -> FaultReplanEvent:
        """Re-plan against the currently-estimated cluster health and
        install the new schedule iff the migration prices in."""
        from ..faults.injector import derive_degraded
        from ..faults.model import FaultSpec
        from ..runtime.simulate import SimulationConfig, simulate_program

        slowdowns = self.fault_detector.slowdowns()
        if slowdowns:
            degraded = derive_degraded(
                self._nominal_optimizer.cluster,
                [
                    FaultSpec("straggler", target=d, severity=s)
                    for d, s in sorted(slowdowns.items())
                ],
            )
            target = self._optimizer_for(degraded.plan_spec)
        else:
            target = self._nominal_optimizer
        # re-target drift re-planning (and its store/cache identity) at
        # the current health immediately; the *schedule* swap below is
        # the part migration pricing gates
        self.optimizer = target

        t0 = time.perf_counter()
        target.set_routing_signatures(dict(self._observed) or None)
        program, report = target.optimize(self.graph)
        wall = time.perf_counter() - t0

        # price the migration: steady-state per-iteration win of the new
        # schedule on the target cluster vs a one-off parameter
        # redistribution (one full all-reduce of the parameters)
        sim = SimulationConfig(
            cluster=target.cluster, framework=target.framework
        )
        stale_ms = simulate_program(self.program, config=sim).makespan
        new_ms = simulate_program(program, config=sim).makespan
        param_bytes = float(
            sum(self.program.type_of(p).nbytes for p in self.program.params)
        )
        migration_cost_ms = target.cluster.allreduce_time_ms(param_bytes)
        win = stale_ms - new_ms
        migrated = win * self.migration_horizon_steps > migration_cost_ms
        if migrated:
            report.fault_context = {
                "trigger": trigger,
                "step": step,
                "fault_events": [e.to_dict() for e in faults],
                "recovery_events": [e.to_dict() for e in recoveries],
                "slowdowns": {str(d): s for d, s in sorted(slowdowns.items())},
                "cluster": target.cluster.name,
            }
            self._install_program(program, report.predicted_iteration_ms)
            self.plan_signatures = dict(self._observed)
            self._store_put(program, report)
        event = FaultReplanEvent(
            step=step,
            trigger=trigger,
            slowdowns=dict(sorted(slowdowns.items())),
            cluster=target.cluster.name,
            predicted_stale_ms=stale_ms,
            predicted_ms=new_ms,
            migration_cost_ms=migration_cost_ms,
            migrated=migrated,
            wall_seconds=wall,
        )
        self.fault_replans.append(event)
        return event

    def _install_program(self, program: Program, predicted_ms: float) -> None:
        """Swap in a re-optimized schedule.  Lancet's rewrites are
        numerically exact and preserve parameter / state value ids, so
        the carried training state keeps working unchanged."""
        if program is self.program:
            return
        self.executor.close()
        self.program = program
        self.executor = NumericExecutor(
            program, self.g, parallel=self.executor.parallel
        )
        self._updated = self._update_map()
        self._routing_vids = self._find_routing_values()
        self.predicted_ms = predicted_ms

    @property
    def reoptimization_seconds(self) -> float:
        """Total wall time spent re-running the optimizer (cache hits
        are free)."""
        return sum(e.wall_seconds for e in self.events)

    @property
    def num_reoptimizations(self) -> int:
        return len(self.events)

    @property
    def plan_cache_stats(self) -> dict:
        """Hit/miss/eviction counters of the signature-keyed plan cache."""
        return self._plan_cache.stats()
