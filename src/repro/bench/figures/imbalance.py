"""Load-imbalance scenario family: per-device simulation under skew.

Not a paper figure -- an extension the per-device simulator enables
(Lancet Sec. 3 motivates irregular all-to-all with exactly this expert-
load skew; MoNTA-style traffic analysis studies it head on).  Each
scenario perturbs the routing realization or the hardware:

- ``uniform``   -- perfectly balanced experts (the cost model's view),
- ``mild``      -- Dirichlet popularity, concentration 16 (trained gate),
- ``hot``       -- heavy skew + per-layer hot experts,
- ``straggler`` -- balanced routing but one GPU at 70% clocks.

For each (scenario, framework) cell we report cluster iteration time,
the per-device spread of realized all-to-all busy time, and the exposed
communication of the critical device.  Padded baselines are skew-
*insensitive* in communication (they always move the full buffer) but
pay for it in time; Lancet's irregular all-to-all is cheaper everywhere
yet its completion tracks the hottest device.
"""

from __future__ import annotations

from ...baselines import make_framework
from ...runtime import (
    ClusterSpec,
    GroundTruthCost,
    SimulationConfig,
    SyntheticRoutingModel,
    UniformRoutingModel,
    device_byte_loads,
    simulate_cluster_batch,
)
from ..formatting import format_table
from ..harness import model_by_name, paper_batch
from .common import FigureResult


def _send_imbalance(cost: GroundTruthCost, program) -> float:
    """Max/mean per-device send bytes of the first realized irregular
    all-to-all (1.0 = perfectly balanced; padded schedules have no
    realized irregularity and report 1.0)."""
    for instr in program.instructions:
        if instr.op != "all_to_all":
            continue
        pair = cost.a2a_pair_bytes(instr, program)
        if pair is None:
            return 1.0
        send, _recv = device_byte_loads(pair)
        mean = send.mean()
        return float(send.max() / mean) if mean > 0 else 1.0
    return 1.0


def scenario_configs(seed: int = 1) -> dict[str, dict]:
    """Named scenario -> SimulationConfig overrides."""
    return {
        "uniform": dict(routing=UniformRoutingModel()),
        "mild": dict(routing=SyntheticRoutingModel(seed=seed, concentration=16.0)),
        "hot": dict(
            routing=SyntheticRoutingModel(
                seed=seed, concentration=1.0, hot_experts=2, hot_boost=0.3
            )
        ),
        "straggler": dict(
            routing=UniformRoutingModel(),
            straggler_slowdown={0: 1.0 / 0.7},
        ),
    }


def run(
    model: str = "GPT2-S-MoE",
    cluster_kind: str = "a100",
    num_gpus: int = 16,
    frameworks=("raf", "lancet"),
    scenarios=("uniform", "mild", "hot", "straggler"),
    seed: int = 1,
) -> FigureResult:
    """Sweep routing-skew / straggler scenarios per framework."""
    from ...models import build_training_graph

    cfg = model_by_name(model)
    batch = paper_batch(cluster_kind, model)
    graph = build_training_graph(
        cfg, batch=batch, seq=512, num_gpus=num_gpus
    )
    cluster = ClusterSpec.for_gpus(cluster_kind, num_gpus)
    all_scenarios = scenario_configs(seed)

    rows = []
    for fw_name in frameworks:
        prepared = make_framework(fw_name).prepare(graph, cluster)
        # one framework = one program under several scenarios: simulate
        # the whole scenario family in a single vectorized batch
        batch_costs = [
            GroundTruthCost(
                SimulationConfig(
                    cluster=cluster,
                    framework=prepared.profile,
                    padded_a2a=prepared.padded_a2a,
                    **all_scenarios[scen],
                )
            )
            for scen in scenarios
        ]
        result = simulate_cluster_batch(prepared.program, costs=batch_costs)
        for b, scen in enumerate(scenarios):
            cost = batch_costs[b]
            ctl = result.timeline(b)
            bd = ctl.breakdown()  # critical device
            rows.append(
                {
                    "framework": fw_name,
                    "scenario": scen,
                    "iteration_ms": ctl.makespan,
                    "a2a_spread_ms": ctl.imbalance_ms({"all_to_all"}),
                    "send_imbalance": _send_imbalance(cost, prepared.program),
                    "comm_only_ms": bd.comm_only,
                    "critical_device": ctl.critical_device,
                }
            )

    # normalize within each framework against its uniform scenario
    # (fall back to the first listed scenario if uniform wasn't run)
    base_scen = "uniform" if "uniform" in scenarios else scenarios[0]
    for fw_name in frameworks:
        base = next(
            r["iteration_ms"]
            for r in rows
            if r["framework"] == fw_name and r["scenario"] == base_scen
        )
        for r in rows:
            if r["framework"] == fw_name:
                r["slowdown_vs_uniform"] = r["iteration_ms"] / base

    table = format_table(
        ["Framework", "Scenario", "Iter ms", "A2A spread", "Send imb",
         "Comm-only", "Crit dev", "vs unif"],
        [
            [
                r["framework"],
                r["scenario"],
                r["iteration_ms"],
                r["a2a_spread_ms"],
                r["send_imbalance"],
                r["comm_only_ms"],
                r["critical_device"],
                r["slowdown_vs_uniform"],
            ]
            for r in rows
        ],
        title=f"Load imbalance scenarios ({model}, {cluster_kind}, "
        f"{num_gpus} GPUs)",
    )
    notes = {
        "max_slowdown": max(r["slowdown_vs_uniform"] for r in rows),
        "max_a2a_spread_ms": max(r["a2a_spread_ms"] for r in rows),
        # lower-is-better gates for the CI regression check
        "regression_metrics": {
            f"{r['framework']}/{r['scenario']}_iter_ms": r["iteration_ms"]
            for r in rows
        },
    }
    return FigureResult(
        "imbalance", "per-device load-imbalance scenarios", rows, table, notes
    )
