"""Design-choice ablation: the dW assignment strategy.

The paper (Sec. 4.2) reduces dW-to-all-to-all assignment to a generalized
assignment problem and picks a *best-fit* greedy.  This bench quantifies
that choice against two natural alternatives (first-fit by program order,
largest-remaining-first) across both clusters.
"""


from repro import GPT2MoEConfig, build_training_graph
from repro.bench import format_table
from repro.core import (
    CachingOpProfiler,
    CommCostModel,
    CostEstimator,
    WeightGradSchedulePass,
)
from repro.core.dw_schedule import DW_STRATEGIES
from repro.runtime import (
    COMPILED,
    ClusterSpec,
    SimulationConfig,
    SyntheticRoutingModel,
    simulate_program,
)


def run_strategy_ablation():
    rows = []
    for kind, batch in (("a100", 24), ("v100", 16)):
        cluster = ClusterSpec.for_gpus(kind, 32)
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(), batch=batch, seq=512, num_gpus=32
        )
        costs = CostEstimator(
            CachingOpProfiler(gpu=cluster.gpu, framework=COMPILED),
            CommCostModel(cluster),
        )
        sim = SimulationConfig(
            cluster=cluster,
            padded_a2a=False,
            routing=SyntheticRoutingModel(seed=1),
        )
        base = simulate_program(graph.program, config=sim).makespan
        rows.append((kind, "none", base, 0, 0.0))
        for strategy in DW_STRATEGIES:
            p = graph.program.clone()
            pas = WeightGradSchedulePass(costs, strategy=strategy)
            p = pas.run(p)
            t = simulate_program(p, config=sim).makespan
            rows.append(
                (
                    kind,
                    strategy,
                    t,
                    pas.report.num_dw_moved,
                    pas.report.total_planned_overlap_ms,
                )
            )
    return rows


def test_dw_strategy_ablation(benchmark):
    rows = benchmark.pedantic(
        run_strategy_ablation, rounds=1, iterations=1, warmup_rounds=0
    )
    table = format_table(
        ["Cluster", "Strategy", "Iter (ms)", "dW moved", "Planned overlap (ms)"],
        [list(r) for r in rows],
        title="dW assignment strategy ablation (GPT2-S-MoE, 32 GPUs)",
    )
    print(f"\n{table}")

    by = {(r[0], r[1]): r[2] for r in rows}
    for kind in ("a100", "v100"):
        # any scheduling beats none
        for strategy in DW_STRATEGIES:
            assert by[(kind, strategy)] < by[(kind, "none")]
        # the paper's best-fit is at least as good as the alternatives
        # (within 1%: ties happen when the dW pool saturates the a2a)
        best_alternative = min(
            by[(kind, "first_fit")], by[(kind, "largest_first")]
        )
        assert by[(kind, "best_fit")] <= best_alternative * 1.01
