"""Simulated distributed runtime: devices, network, collectives, executors.

Substitutes for the paper's multi-GPU clusters (see DESIGN.md): an
analytic GPU/network performance model drives a discrete-event timed
simulation, while a numpy interpreter provides numerically exact
execution for equivalence testing.
"""

from .cluster import ClusterSpec
from .collectives import (
    all_to_all_dense,
    all_to_all_irregular,
    allreduce_sum,
    device_byte_loads,
    hierarchical_all_to_all,
)
from .device import (
    A100,
    COMPILED,
    DEEPSPEED,
    FRAMEWORK_PROFILES,
    TUTEL,
    V100,
    FrameworkProfile,
    GPUSpec,
)
from .batch import (
    BatchClusterResult,
    LanePack,
    ScenarioPack,
    pack_lane,
    pack_scenarios,
    simulate_lanes,
    simulate_scenarios,
)
from .executor import DeviceEnv, NumericExecutor, run_program
from .routing_model import (
    RoutingSignature,
    SyntheticRoutingModel,
    UniformRoutingModel,
)
from .simulate import (
    DISPATCH_OPS,
    GroundTruthCost,
    SimulationConfig,
    iteration_time_ms,
    observed_routing_signatures,
    simulate_cluster,
    simulate_cluster_batch,
    simulate_program,
)
from .topology import HierarchicalTiming, HierarchicalTraffic, Topology
from .timeline import (
    Breakdown,
    ClusterTimeline,
    Interval,
    Timeline,
    intersect_length,
    merge_intervals,
    total_length,
)
from .visualize import (
    imbalance_summary,
    overlap_summary,
    render_cluster_timeline,
    render_timeline,
)

__all__ = [
    "A100",
    "BatchClusterResult",
    "Breakdown",
    "COMPILED",
    "ClusterSpec",
    "ClusterTimeline",
    "DEEPSPEED",
    "DISPATCH_OPS",
    "DeviceEnv",
    "FRAMEWORK_PROFILES",
    "FrameworkProfile",
    "GPUSpec",
    "GroundTruthCost",
    "HierarchicalTiming",
    "HierarchicalTraffic",
    "Interval",
    "LanePack",
    "NumericExecutor",
    "RoutingSignature",
    "ScenarioPack",
    "SimulationConfig",
    "SyntheticRoutingModel",
    "TUTEL",
    "Timeline",
    "Topology",
    "UniformRoutingModel",
    "V100",
    "all_to_all_dense",
    "all_to_all_irregular",
    "allreduce_sum",
    "device_byte_loads",
    "hierarchical_all_to_all",
    "imbalance_summary",
    "intersect_length",
    "iteration_time_ms",
    "merge_intervals",
    "observed_routing_signatures",
    "overlap_summary",
    "pack_lane",
    "pack_scenarios",
    "render_cluster_timeline",
    "render_timeline",
    "run_program",
    "simulate_cluster",
    "simulate_cluster_batch",
    "simulate_lanes",
    "simulate_program",
    "simulate_scenarios",
    "total_length",
]
