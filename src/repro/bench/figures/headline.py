"""Headline claims (paper abstract / Sec. 1 and Sec. 7 summary).

* Lancet reduces non-overlapping communication time by as much as 77%.
* Lancet achieves up to 1.3x end-to-end speedup over state-of-the-art.
"""

from __future__ import annotations

from ..formatting import format_table
from ..harness import Setting, run_setting
from .common import FigureResult


def run(
    models=("GPT2-S-MoE", "GPT2-L-MoE"),
    clusters=("v100", "a100"),
    gpu_counts=(16, 32),
) -> FigureResult:
    speedups = []
    comm_reductions = []
    rows = []
    for model in models:
        for cluster in clusters:
            for gpus in gpu_counts:
                ms = {}
                for fw in ("raf", "tutel", "lancet"):
                    ms[fw] = run_setting(
                        Setting(
                            model=model,
                            cluster_kind=cluster,
                            num_gpus=gpus,
                            framework=fw,
                        )
                    )
                best = min(ms["raf"].iteration_ms, ms["tutel"].iteration_ms)
                speedup = best / ms["lancet"].iteration_ms
                red = 1.0 - ms["lancet"].comm_only_ms / max(
                    min(ms["raf"].comm_only_ms, ms["tutel"].comm_only_ms), 1e-9
                )
                speedups.append(speedup)
                comm_reductions.append(red)
                rows.append(
                    {
                        "model": model,
                        "cluster": cluster,
                        "gpus": gpus,
                        "speedup": speedup,
                        "comm_reduction_pct": 100 * red,
                    }
                )

    table = format_table(
        ["Model", "Cluster", "GPUs", "Speedup vs best baseline", "Non-ovl comm red. %"],
        [
            [r["model"], r["cluster"], r["gpus"], r["speedup"], r["comm_reduction_pct"]]
            for r in rows
        ],
        title="Headline claims",
    )
    notes = {
        "max_speedup": max(speedups),
        "max_comm_reduction_pct": 100 * max(comm_reductions),
        "paper": "up to 1.3x speedup; up to 77% non-overlapped comm reduction",
    }
    return FigureResult("headline", "headline claims", rows, table, notes)
