"""Planner latency: cold plan vs warm re-plan (extension of Fig. 15).

PR 2's online re-optimization loop put the partition DP on the training
critical path: every routing-drift event re-plans.  This experiment
measures what a drift event actually costs -- a *cold* plan (fresh
optimizer, empty caches) vs a *warm* re-plan (same optimizer, new
routing signatures, persistent :class:`~repro.core.PlannerState`) --
across program sizes and device counts, and verifies on every grid
point that the fast planner's chosen plans and predicted iteration
times are bit-identical to the retained naive reference DP.
"""

from __future__ import annotations

import time

from ...core import (
    LancetOptimizer,
    plan_partitions,
    plan_partitions_reference,
)
from ...models import GPT2MoEConfig, build_training_graph
from ...runtime import ClusterSpec
from ...runtime.routing_model import SyntheticRoutingModel
from ..formatting import format_table
from .common import FigureResult, make_costs

#: the grid: (label, num_layers, num_gpus, batch, seq).  The 12-layer /
#: 16-GPU point is the reference GPT2-S-MoE setting of the paper
#: (batch 24, seq 512 on A100); the others vary program size and device
#: count.
DEFAULT_GRID = (
    ("GPT2-S-MoE-4L", 4, 8, 8, 256),
    ("GPT2-S-MoE", 12, 16, 24, 512),
    ("GPT2-S-MoE", 12, 32, 24, 512),
)

#: hot-expert drift scenarios replayed against each grid point
DRIFTS = (
    dict(seed=1, concentration=0.5, hot_experts=1, hot_boost=0.7),
    dict(seed=2, concentration=0.5, hot_experts=2, hot_boost=0.5),
    dict(seed=3, concentration=1.0, hot_experts=1, hot_boost=0.45),
)


def _plan_fields(result):
    return [
        (p.start, p.end, p.parts, p.predicted_ms, p.sequential_ms)
        for p in result.plans
    ]


def _program_key(program):
    return [
        (ins.op, ins.partition, tuple(ins.inputs))
        for ins in program.instructions
    ]


def run(grid=DEFAULT_GRID, cluster_kind: str = "a100") -> FigureResult:
    rows = []
    for label, layers, gpus, batch, seq in grid:
        cluster = ClusterSpec.for_gpus(cluster_kind, gpus)
        cfg = GPT2MoEConfig.gpt2_s_moe(num_layers=layers)
        graph = build_training_graph(cfg, batch=batch, seq=seq, num_gpus=gpus)

        # -- cold plan: fresh optimizer, empty caches.  Best-of-2 (each
        # on its own optimizer, so both are genuinely cold) to damp
        # scheduler noise; the final optimizer carries the warm state.
        cold_s = float("inf")
        for _rep in range(2):
            opt = LancetOptimizer(cluster)
            t0 = time.perf_counter()
            _, cold_report = opt.optimize(graph)
            cold_s = min(cold_s, time.perf_counter() - t0)

        # DP-level equivalence under the uniform approximation
        fast_dp = plan_partitions(graph.program, make_costs(cluster))
        ref_dp = plan_partitions_reference(graph.program, make_costs(cluster))
        dp_identical = (
            _plan_fields(fast_dp) == _plan_fields(ref_dp)
            and fast_dp.optimized_fwd_ms == ref_dp.optimized_fwd_ms
            and fast_dp.baseline_fwd_ms == ref_dp.baseline_fwd_ms
        )
        evals_equal = fast_dp.num_cost_evals == ref_dp.num_cost_evals

        # -- warm re-plans: one per drift event ---------------------------
        warm_s = []
        warm_sims = 0
        warm_identical = True
        for drift in DRIFTS:
            routing = SyntheticRoutingModel(**drift)
            sigs = opt.observe_routing(graph, routing)
            t0 = time.perf_counter()
            warm_prog, warm_report = opt.optimize(graph)
            warm_s.append(time.perf_counter() - t0)
            warm_sims = warm_report.partition.num_pipeline_sims
            assert warm_report.partition.warm_start
            # the warm plan must equal what a cold optimizer, handed the
            # same signatures, would have produced -- bit for bit
            check = LancetOptimizer(cluster)
            check.set_routing_signatures(sigs)
            check_prog, check_report = check.optimize(graph)
            warm_identical &= _program_key(check_prog) == _program_key(
                warm_prog
            ) and (
                check_report.predicted_iteration_ms
                == warm_report.predicted_iteration_ms
            )

        # best-of over drift events: every one is a true re-plan against
        # a changed signature, so the min is the honest latency with the
        # least scheduler noise
        warm_best = min(warm_s)
        rows.append(
            {
                "model": label,
                "layers": layers,
                "gpus": gpus,
                "instructions": len(graph.program.instructions),
                "groups": cold_report.partition.num_groups,
                "cold_plan_ms": cold_s * 1e3,
                "warm_replan_ms": warm_best * 1e3,
                "speedup": cold_s / warm_best,
                "cost_evals": cold_report.partition.num_cost_evals,
                "warm_pipeline_sims": warm_sims,
                "dp_bit_identical": dp_identical,
                "warm_bit_identical": warm_identical,
                "evals_equal_reference": evals_equal,
            }
        )

    table = format_table(
        [
            "Model",
            "Layers",
            "GPUs",
            "Instrs",
            "Cold plan (ms)",
            "Warm re-plan (ms)",
            "Speedup",
            "Identical",
        ],
        [
            [
                r["model"],
                r["layers"],
                r["gpus"],
                r["instructions"],
                round(r["cold_plan_ms"], 1),
                round(r["warm_replan_ms"], 1),
                round(r["speedup"], 1),
                r["dp_bit_identical"] and r["warm_bit_identical"],
            ]
            for r in rows
        ],
        title="Planner latency - cold plan vs warm re-plan",
    )

    reference = next(
        (r for r in rows if r["layers"] == 12 and r["gpus"] == 16), rows[-1]
    )
    worst_ratio = max(
        r["warm_replan_ms"] / r["cold_plan_ms"] for r in rows
    )
    notes = {
        "all_bit_identical": all(
            r["dp_bit_identical"] and r["warm_bit_identical"] for r in rows
        ),
        "all_evals_equal_reference": all(
            r["evals_equal_reference"] for r in rows
        ),
        "min_speedup": min(r["speedup"] for r in rows),
        "reference_speedup": reference["speedup"],
        "paper": (
            "extension of Fig. 15: re-planning on drift must be much "
            "cheaper than planning from scratch"
        ),
        # lower-is-better gates for check_regression.py.  The ratio is
        # wall-time based but machine-normalized; the eval/sim counts are
        # fully deterministic.
        "regression_metrics": {
            "warm_over_cold_ratio_worst": worst_ratio,
            "cost_evals_reference": float(reference["cost_evals"]),
            "warm_pipeline_sims_reference": float(
                reference["warm_pipeline_sims"]
            ),
        },
    }
    return FigureResult(
        "opt_time", "cold plan vs warm re-plan latency", rows, table, notes
    )
