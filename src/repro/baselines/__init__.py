"""Baseline framework schedules (paper Sec. 7).

Each baseline couples an execution-stack profile with a schedule
transformation:

* **DeepSpeed** -- eager PyTorch stack without Tutel's dispatch kernels;
  no computation/communication overlap.
* **RAF** -- the compiler stack Lancet builds on, unmodified schedule
  (fused kernels, no overlap).
* **Tutel** -- eager stack with fast dispatch kernels plus capacity-dim
  partitioning of [all-to-all, experts, all-to-all], searching the
  overlap degree in {1, 2, 4, 8} (exactly the paper's methodology).
* **Lancet** -- RAF plus the two optimization passes and irregular
  all-to-alls.
"""

from .frameworks import (
    BaselineResult,
    DeepSpeedBaseline,
    Framework,
    LancetFramework,
    RAFBaseline,
    TutelBaseline,
    make_framework,
)

__all__ = [
    "BaselineResult",
    "DeepSpeedBaseline",
    "Framework",
    "LancetFramework",
    "RAFBaseline",
    "TutelBaseline",
    "make_framework",
]
