"""Small helpers and randomized-scenario generators shared by the test
and benchmark suites.

Lives inside the package (rather than in a ``conftest.py``) so test
modules can import it unambiguously: ``tests/conftest.py`` and
``benchmarks/conftest.py`` are both imported under the module name
``conftest`` in pytest's rootdir mode, so ``from conftest import ...``
resolves to whichever directory was collected first.

The generators are the single source of randomized programs, clusters,
routing models and routed buffers for every differential suite
(``test_fast_replan``, ``test_hierarchical_a2a``,
``test_batch_simulate``): one grid, one drift sequence, one set of
hypothesis strategies.  ``hypothesis`` is imported lazily inside the
strategy factories so the package keeps numpy as its only hard runtime
dependency.
"""

from __future__ import annotations

import numpy as np


def fresh_values(values: list[dict]) -> list[dict]:
    """Deep-enough copy of per-device value dicts for one execution.

    The numeric executor mutates its environments in place; tests reuse
    one initialized value set across executions, so each run gets fresh
    top-level dicts (the tensors themselves are never written in place).
    """
    return [dict(v) for v in values]


# -- randomized program / cluster grids ------------------------------------

#: randomized-ish program grid: layer count, gpus, batch, seq, gate
PROGRAM_GRID = [
    (2, 4, 4, 64, "switch"),
    (3, 8, 8, 128, "switch"),
    (4, 8, 8, 128, "bpr"),
]


def build_grid_graph(layers: int, gpus: int, batch: int, seq: int,
                     gate: str = "switch"):
    """Training graph for one :data:`PROGRAM_GRID` row."""
    from .models import GPT2MoEConfig, build_training_graph

    return build_training_graph(
        GPT2MoEConfig.gpt2_s_moe(num_layers=layers, gate=gate),
        batch=batch,
        seq=seq,
        num_gpus=gpus,
    )


def cluster_grid(num_gpus: int) -> list:
    """Clusters to differentiate against at a device count: a flat
    single-node box plus the two multi-node topologies (which exercise
    hierarchical pricing and the 2-hop device-time model)."""
    from .runtime import ClusterSpec

    out = [ClusterSpec.for_gpus("a100", num_gpus)]
    for factory in (ClusterSpec.p4de, ClusterSpec.p3dn):
        for nodes in (2, 4):
            cl = factory(nodes)
            if cl.num_gpus == num_gpus:
                out.append(cl)
    return out


def routing_models(include_none: bool = False) -> list:
    """The canonical drift sequence: uniform routing plus synthetic
    realizations from balanced to heavily hot-expert-skewed.  Fresh
    instances per call -- synthetic models memoize their per-layer draws,
    so shared instances would couple callers.  ``include_none`` prepends
    ``None`` ("no signatures observed", the planner's static
    approximation)."""
    from .runtime import SyntheticRoutingModel, UniformRoutingModel

    models: list = [
        UniformRoutingModel(),
        SyntheticRoutingModel(
            seed=1, concentration=0.5, hot_experts=1, hot_boost=0.7
        ),
        SyntheticRoutingModel(
            seed=2, concentration=1.0, hot_experts=2, hot_boost=0.5
        ),
        SyntheticRoutingModel(seed=3, concentration=16.0),
    ]
    if include_none:
        models.insert(0, None)
    return models


def straggler_scenarios(num_gpus: int) -> list:
    """Straggler knobs to sweep: nominal, one slow device (the paper's
    30%-degraded straggler), and a mildly heterogeneous cluster."""
    rng = np.random.default_rng(7)
    return [
        None,
        {0: 1.0 / 0.7},
        list(rng.uniform(1.0, 1.3, size=num_gpus)),
    ]


# -- realized routing helpers (moved from test_hierarchical_a2a) -----------


def routed_buffers(rng, g, el, c, h, t, temperature=1.0):
    """Per-device dispatch buffers with realistic routing + their counts."""
    from .moe import dispatch, route_switch
    from .moe.layer import softmax

    e = g * el
    bufs, counts = [], np.zeros((g, e), dtype=np.int64)
    for d in range(g):
        probs = softmax(rng.standard_normal((t, e)) * temperature)
        info, _ = route_switch(probs, capacity=c)
        bufs.append(dispatch(rng.standard_normal((t, h)), info))
        counts[d] = info.expert_counts()
    return bufs, counts


def random_pair_bytes(rng, g, skew=1.0):
    """A positive pair-bytes matrix with a controllable hot column."""
    pair = np.abs(rng.standard_normal((g, g))) * 1e6
    hot = int(rng.integers(g))
    pair[:, hot] *= skew
    return pair


# -- hypothesis strategies (lazy: hypothesis is a test-only dependency) ----


def st_routing_model():
    """Strategy over routing models: uniform or a synthetic realization
    spanning balanced to single-hot-expert regimes."""
    from hypothesis import strategies as st

    from .runtime import SyntheticRoutingModel, UniformRoutingModel

    synthetic = st.builds(
        SyntheticRoutingModel,
        seed=st.integers(0, 2**16),
        concentration=st.sampled_from([0.3, 0.5, 1.0, 4.0, 16.0]),
        hot_experts=st.integers(0, 2),
        hot_boost=st.sampled_from([0.0, 0.3, 0.5, 0.7]),
    )
    return st.one_of(st.builds(UniformRoutingModel), synthetic)


def st_exchange_params():
    """Strategy over randomized irregular-exchange scenarios, shared by
    the hierarchical-a2a bit-identity property and the batch-simulation
    differential harness (both stress ANY realized routing)."""
    from hypothesis import strategies as st

    return st.fixed_dictionaries(
        {
            "seed": st.integers(0, 2**16),
            "g": st.sampled_from([4, 8]),
            "el": st.integers(1, 2),
            "c": st.integers(2, 8),
            "t": st.integers(4, 32),
            "temperature": st.floats(0.25, 8.0),
            "direction": st.sampled_from(["scatter", "gather"]),
        }
    )


def st_expert_placement(num_experts: int, num_devices: int, max_replicas: int = 3):
    """Strategy over valid :class:`~repro.placement.ExpertPlacement`\\ s:
    every expert placed, replica device sets duplicate-free, traffic
    fractions positive and normalized -- the full artifact space the
    placement property suite quantifies over (identity included)."""
    from hypothesis import strategies as st

    from .placement import ExpertPlacement

    def build(seed):
        rng = np.random.default_rng(seed)
        assignments = []
        for _ in range(num_experts):
            r = int(rng.integers(1, min(max_replicas, num_devices) + 1))
            devices = rng.choice(num_devices, size=r, replace=False)
            weights = rng.random(r) + 0.05  # bounded away from 0
            fractions = weights / weights.sum()
            assignments.append(
                tuple(
                    (int(d), float(f)) for d, f in zip(devices, fractions)
                )
            )
        return ExpertPlacement(num_experts, num_devices, tuple(assignments))

    identity = st.just(None).map(
        lambda _: ExpertPlacement.identity(num_experts, num_devices)
        if num_experts % num_devices == 0
        else build(0)
    )
    return st.one_of(identity, st.integers(0, 2**16).map(build))


def st_dispatch_counts(num_devices: int, num_experts: int, max_tokens: int = 512):
    """Strategy over skewed integer dispatch-count matrices
    ``[num_devices, num_experts]``: a noise floor plus 0-2 hot expert
    columns, the traffic regime placement optimization targets."""
    from hypothesis import strategies as st

    def build(params):
        seed, hot_experts, boost = params
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, max_tokens // 4, size=(num_devices, num_experts))
        for h in rng.choice(num_experts, size=hot_experts, replace=False):
            counts[:, h] += int(boost * max_tokens)
        return counts

    return st.tuples(
        st.integers(0, 2**16),
        st.integers(0, min(2, num_experts)),
        st.sampled_from([0.5, 1.0, 2.0]),
    ).map(build)


def make_drift_trace(
    num_devices: int,
    num_experts: int,
    steps: int = 40,
    seed: int = 0,
    base_tokens: int = 50,
    hot_tokens: int = 700,
    episodes: tuple = ((8, 20, 1), (26, 38, 4)),
) -> list[np.ndarray]:
    """A recorded dispatch-count trace with hot-expert drift episodes.

    Steady near-balanced traffic, interrupted by ``episodes`` of
    ``(start_step, end_step, hot_expert)`` during which the named expert
    receives ``hot_tokens`` extra tokens per device -- the workload
    shape (sudden popularity shifts that persist for a while) that makes
    priced expert migration win.  Deterministic in ``seed``; the
    checked-in ``tests/fixtures/routing_trace.json`` is one of these.
    """
    rng = np.random.default_rng(seed)
    trace = []
    for step in range(steps):
        counts = rng.integers(
            max(1, base_tokens // 2),
            base_tokens,
            size=(num_devices, num_experts),
        )
        for start, end, hot in episodes:
            if start <= step < end:
                counts[:, hot % num_experts] += hot_tokens
        trace.append(counts.astype(np.int64))
    return trace


def st_staged_cluster():
    """Strategy over valid :class:`~repro.pipeline.StagedCluster`\\ s:
    single- and multi-node base clusters tiled into 2-4 stages with
    randomized per-stage layer counts -- the topology space the pipeline
    property suite quantifies over.  Every shape satisfies the stage
    constraints (stages divide the GPU count; subgroups align with node
    boundaries or divide a node)."""
    from hypothesis import strategies as st

    from .pipeline import StagedCluster
    from .runtime import ClusterSpec

    shapes = st.sampled_from(
        [
            ("a100", 4, 2),
            ("a100", 8, 2),
            ("a100", 8, 4),
            ("v100", 16, 2),
            ("v100", 16, 4),
        ]
    )

    def build(params):
        (kind, gpus, num_stages), seed = params
        rng = np.random.default_rng(seed)
        counts = [int(rng.integers(1, 4)) for _ in range(num_stages)]
        return StagedCluster.from_layer_counts(
            ClusterSpec.for_gpus(kind, gpus), counts
        )

    return st.tuples(shapes, st.integers(0, 2**16)).map(build)


def st_microbatch_count(max_microbatches: int = 8):
    """Strategy over pipeline microbatch counts (>= 1, small enough to
    keep staged-schedule properties fast)."""
    from hypothesis import strategies as st

    return st.integers(1, max_microbatches)


def st_simulation_scenario(num_gpus: int):
    """Strategy over (routing model, straggler map, protocol flags) --
    one scenario for the batch-vs-scalar differential harness."""
    from hypothesis import strategies as st

    stragglers = st.one_of(
        st.none(),
        st.dictionaries(
            st.integers(0, num_gpus - 1),
            st.floats(0.5, 2.0),
            min_size=1,
            max_size=min(3, num_gpus),
        ),
    )
    return st.fixed_dictionaries(
        {
            "routing": st_routing_model(),
            "straggler_slowdown": stragglers,
            "padded_a2a": st.booleans(),
            "block_sparse_experts": st.booleans(),
        }
    )
