"""Stage-partitioner: split a training :class:`~repro.ir.Program` into
per-stage subprograms and reassemble them after per-stage optimization.

Each stage gets three segments, mirroring what its devices execute per
pipeline job:

- **forward** -- the stage's forward blocks (one F job per microbatch);
- **backward** -- its dX/dW work plus backward all-to-alls (one B job);
- **tail** -- gradient all-reduces and optimizer updates, issued once per
  *iteration* after the stage's last microbatch (gradient accumulation).

Segments are real, validating :class:`~repro.ir.Program`\\ s, so the
unmodified :class:`~repro.core.LancetOptimizer` can plan each stage's
partition/dW/a2a choices against the stage's own subgroup cluster.
:func:`reassemble` stitches the (possibly optimized) segments back into
one flat program -- renumbering optimizer-created SSA values, which are
only unique per segment -- and validates the result.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..ir import InstrKind, Program, Value
from ..ir.validate import validate
from .stage import StagedCluster

#: segment phases, in per-stage execution order
PHASES = ("forward", "backward", "tail")


@dataclass
class Segment:
    """One stage's forward, backward, or tail subprogram.

    ``program`` is a mutable slot: replace it with the optimizer's output
    (same declared-output arity) and :func:`reassemble` reconciles ids.
    """

    stage: int
    phase: str
    program: Program
    #: declared outputs at split time (original value ids, position-wise
    #: matched against ``program.outputs`` after optimization)
    declared_outputs: tuple[int, ...] = ()
    #: value ids present at split time -- anything else in an optimized
    #: segment is segment-local and gets renumbered on reassembly
    original_values: frozenset[int] = frozenset()


@dataclass
class SplitProgram:
    """A program split by stage: ``3 * S`` segments plus boundary sizes."""

    source: Program
    staged: StagedCluster
    segments: dict[tuple[int, str], Segment] = field(default_factory=dict)
    #: per-boundary forward-activation bytes (one device's shard)
    fwd_boundary_bytes: tuple[float, ...] = ()
    #: per-boundary backward-gradient bytes (one device's shard)
    bwd_boundary_bytes: tuple[float, ...] = ()

    def segment(self, stage: int, phase: str) -> Segment:
        return self.segments[(stage, phase)]

    def execution_order(self) -> list[Segment]:
        """Segments in reassembly order: all forwards in stage order, all
        backwards in reverse stage order, all tails in stage order --
        a topological order of the cross-segment dataflow."""
        s = self.staged.num_stages
        order = [self.segment(i, "forward") for i in range(s)]
        order += [self.segment(i, "backward") for i in reversed(range(s))]
        order += [self.segment(i, "tail") for i in range(s)]
        return order


def extract_subprogram(
    program: Program, instrs: list, name: str
) -> Program:
    """A valid standalone subprogram over a subset of instructions.

    ``instrs`` must be in program order.  Values consumed but not defined
    inside the subset become the subprogram's roots, classified by the
    source program's declarations (params stay params, optimizer states
    stay states, everything else -- including cross-segment activations --
    becomes an input).  Outputs are the subset's definitions consumed
    outside it, plus any source-program outputs it defines.
    """
    chosen_uids = {i.uid for i in instrs}
    defined = {o for i in instrs for o in i.outputs}
    root_params = set(program.params)
    root_states = set(program.states)

    sub = Program(name)
    for instr in instrs:
        for v in instr.inputs:
            if v in defined or v in sub.values:
                continue
            sub.values[v] = program.values[v]
            if v in root_params:
                sub.params.append(v)
            elif v in root_states:
                sub.states.append(v)
            else:
                sub.inputs.append(v)
        for o in instr.outputs:
            sub.values[o] = program.values[o]
    sub.instructions = list(instrs)

    outside_uses = set(program.outputs)
    for instr in program.instructions:
        if instr.uid not in chosen_uids:
            outside_uses.update(instr.inputs)
    sub.outputs = [
        o for i in instrs for o in i.outputs if o in outside_uses
    ]
    sub.grads = {pa: g for pa, g in program.grads.items() if g in defined}
    sub._next_value_id = itertools.count(max(sub.values, default=-1) + 1)
    return sub


def _infer_forward_len(program: Program) -> int:
    for idx, instr in enumerate(program.instructions):
        if instr.kind in (InstrKind.DX, InstrKind.DW):
            return idx
    return len(program.instructions)


def split_stages(
    graph_or_program,
    staged: StagedCluster,
    forward_len: int | None = None,
    check: bool = True,
) -> SplitProgram:
    """Split a layer-stamped training program into per-stage segments.

    Accepts a :class:`~repro.models.ModelGraph` (which knows its forward
    prefix length) or a bare :class:`~repro.ir.Program` (the forward/
    backward split is then inferred from the first dX/dW instruction).
    """
    program = getattr(graph_or_program, "program", graph_or_program)
    if forward_len is None:
        forward_len = getattr(
            graph_or_program, "forward_len", None
        ) or _infer_forward_len(program)

    buckets: dict[tuple[int, str], list] = {
        (s, ph): [] for s in range(staged.num_stages) for ph in PHASES
    }
    for idx, instr in enumerate(program.instructions):
        layer = instr.attrs.get("layer")
        if layer is None:
            raise ValueError(
                f"instruction {idx} ({instr.op}) carries no 'layer' attr; "
                "stage partitioning needs layer-stamped programs (rebuild "
                "the graph with the current model builders)"
            )
        stage = staged.stage_of_layer(int(layer))
        if instr.op == "allreduce" or instr.kind == InstrKind.OPTIMIZER:
            phase = "tail"  # once-per-iteration work under accumulation
        elif idx < forward_len:
            phase = "forward"
        else:
            phase = "backward"
        buckets[(stage, phase)].append(instr)

    split = SplitProgram(source=program, staged=staged)
    for (stage, phase), instrs in buckets.items():
        sub = extract_subprogram(
            program, instrs, f"{program.name}/s{stage}-{phase}"
        )
        if check and sub.instructions:
            validate(sub)
        split.segments[(stage, phase)] = Segment(
            stage=stage,
            phase=phase,
            program=sub,
            declared_outputs=tuple(sub.outputs),
            original_values=frozenset(sub.values),
        )

    split.fwd_boundary_bytes, split.bwd_boundary_bytes = _boundary_bytes(
        split
    )
    return split


def _boundary_bytes(split: SplitProgram) -> tuple[tuple, tuple]:
    """Per-boundary activation bytes crossing between adjacent stages.

    A value defined in (forward of) stage ``d`` and consumed in stage
    ``s > d`` transits every boundary in between; same for backward
    gradients flowing the other way.
    """
    num = split.staged.num_stages
    fwd = [0.0] * max(num - 1, 0)
    bwd = [0.0] * max(num - 1, 0)

    def_stage: dict[int, int] = {}
    for s in range(num):
        for instr in split.segment(s, "forward").program.instructions:
            for o in instr.outputs:
                def_stage[o] = s
    for s in range(num):
        for v in split.segment(s, "forward").program.inputs:
            d = def_stage.get(v)
            if d is not None and d < s:
                nbytes = float(split.source.type_of(v).nbytes)
                for b in range(d, s):
                    fwd[b] += nbytes

    grad_stage: dict[int, int] = {}
    for s in range(num):
        for instr in split.segment(s, "backward").program.instructions:
            for o in instr.outputs:
                grad_stage[o] = s
    for s in range(num):
        for v in split.segment(s, "backward").program.inputs:
            d = grad_stage.get(v)
            if d is not None and d > s:
                nbytes = float(split.source.type_of(v).nbytes)
                for b in range(s, d):
                    bwd[b] += nbytes

    return tuple(fwd), tuple(bwd)


def reassemble(split: SplitProgram, name: str | None = None) -> Program:
    """Stitch (possibly optimized) segments back into one flat program.

    Optimizer-created values carry ids that are only unique within their
    segment; they are renumbered into a shared namespace above the source
    program's ids.  Renamed segment outputs (e.g. an all-to-all replaced
    by partitioned chunks plus a concat) are propagated to downstream
    consumers.  The result is validated.
    """
    src = split.source
    out = Program(name or f"{src.name}-staged")
    for vid in src.inputs:
        out.inputs.append(vid)
        out.values[vid] = src.values[vid]
    for vid in src.params:
        out.params.append(vid)
        out.values[vid] = src.values[vid]
    for vid in src.states:
        out.states.append(vid)
        out.values[vid] = src.values[vid]

    next_free = max(src.values, default=-1) + 1
    subst: dict[int, int] = {}  # original id -> renamed final id

    for seg in split.execution_order():
        p = seg.program
        known = seg.original_values
        local: dict[int, int] = {}  # segment-new id -> final id

        def map_use(v: int) -> int:
            if v not in known:
                if v not in local:
                    raise ValueError(
                        f"segment {p.name} reads value %{v} that is "
                        "neither original nor defined locally"
                    )
                return local[v]
            return subst.get(v, v)

        for instr in p.instructions:
            new_in = tuple(map_use(v) for v in instr.inputs)
            new_out = []
            for o in instr.outputs:
                if o in known:
                    fo = o
                else:
                    fo = local.get(o)
                    if fo is None:
                        fo = next_free
                        next_free += 1
                        local[o] = fo
                new_out.append(fo)
                if fo not in out.values:
                    val = p.values[o]
                    out.values[fo] = (
                        val if fo == o else Value(fo, val.type, val.name)
                    )
            new_out = tuple(new_out)
            if new_in != instr.inputs or new_out != instr.outputs:
                instr = instr.with_(
                    uid=instr.uid, inputs=new_in, outputs=new_out
                )
            out.instructions.append(instr)

        if len(p.outputs) != len(seg.declared_outputs):
            raise ValueError(
                f"segment {p.name}: optimizer changed declared-output "
                f"arity ({len(seg.declared_outputs)} -> {len(p.outputs)})"
            )
        for orig, cur in zip(seg.declared_outputs, p.outputs):
            final = local.get(cur, subst.get(cur, cur))
            if final != orig:
                subst[orig] = final

    out.outputs = [subst.get(v, v) for v in src.outputs]
    out.grads = {pa: subst.get(g, g) for pa, g in src.grads.items()}
    out._next_value_id = itertools.count(max(out.values, default=-1) + 1)
    validate(out)
    return out
