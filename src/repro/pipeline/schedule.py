"""Microbatch schedulers: per-stage job orders for GPipe and 1F1B.

A schedule is, per stage, an ordered list of :class:`Job`\\ s (forward or
backward of one microbatch).  The staged simulator executes each stage's
jobs strictly in this order -- program order on a device, exactly like
the instruction-level simulator -- with cross-stage dependencies supplied
by the activation p2p edges.

Two classic schedules, behind one ablation switch (:func:`schedule_order`):

- **GPipe**: all ``M`` forwards, then all backwards (freshest microbatch
  first).  Peak in-flight microbatches = ``M`` on every stage.
- **1F1B**: ``min(M, S-1-s)`` warmup forwards on stage ``s``, then
  alternate one-forward-one-backward, then cooldown backwards.  Peak
  in-flight microbatches = ``min(M, S-s)`` -- the memory win that made
  1F1B the production default.
"""

from __future__ import annotations

from dataclasses import dataclass

from .stage import SCHEDULES


@dataclass(frozen=True)
class Job:
    """One unit of pipeline work: F or B of one microbatch on one stage."""

    stage: int
    microbatch: int
    kind: str  # "F" | "B"

    def __post_init__(self) -> None:
        if self.kind not in ("F", "B"):
            raise ValueError(f"job kind must be 'F' or 'B', got {self.kind!r}")

    @property
    def key(self) -> tuple[str, int, int]:
        return (self.kind, self.stage, self.microbatch)


def _check_shape(num_stages: int, num_microbatches: int) -> None:
    if num_stages < 1:
        raise ValueError("need >= 1 stage")
    if num_microbatches < 1:
        raise ValueError("need >= 1 microbatch")


def gpipe_order(num_stages: int, num_microbatches: int) -> list[list[Job]]:
    """GPipe: per stage, all forwards then all backwards.

    Backwards run in reverse microbatch order (the last microbatch's
    activations are freshest, and its gradient is the first available
    from the downstream stage).
    """
    _check_shape(num_stages, num_microbatches)
    orders = []
    for s in range(num_stages):
        jobs = [Job(s, m, "F") for m in range(num_microbatches)]
        jobs += [Job(s, m, "B") for m in reversed(range(num_microbatches))]
        orders.append(jobs)
    return orders


def one_f_one_b_order(num_stages: int, num_microbatches: int) -> list[list[Job]]:
    """1F1B: warmup forwards, steady-state alternation, cooldown backwards."""
    _check_shape(num_stages, num_microbatches)
    orders = []
    for s in range(num_stages):
        warmup = min(num_microbatches, num_stages - 1 - s)
        jobs = [Job(s, m, "F") for m in range(warmup)]
        f_next, b_next = warmup, 0
        while f_next < num_microbatches:
            jobs.append(Job(s, f_next, "F"))
            f_next += 1
            jobs.append(Job(s, b_next, "B"))
            b_next += 1
        while b_next < num_microbatches:
            jobs.append(Job(s, b_next, "B"))
            b_next += 1
        orders.append(jobs)
    return orders


def schedule_order(
    name: str, num_stages: int, num_microbatches: int
) -> list[list[Job]]:
    """Per-stage job orders for a named schedule (the ablation switch)."""
    if name == "gpipe":
        return gpipe_order(num_stages, num_microbatches)
    if name == "1f1b":
        return one_f_one_b_order(num_stages, num_microbatches)
    raise ValueError(f"unknown schedule {name!r}; pick from {SCHEDULES}")


def peak_in_flight(order: list[Job]) -> int:
    """Peak simultaneously-live microbatches of one stage's job order
    (forwards issued minus backwards retired, maximized over prefixes) --
    the activation-memory high-water mark."""
    live = peak = 0
    for job in order:
        live += 1 if job.kind == "F" else -1
        peak = max(peak, live)
    return peak
