"""Operator partition pass: axis inference, pipeline scheduling, DP."""

from .axis_inference import (
    InferenceResult,
    MOE_ONLY_OPS,
    infer_axes,
    range_is_moe_only,
)
from .dp import (
    DPResult,
    Group,
    LancetHyperParams,
    RangePlan,
    build_groups,
    forward_length,
    plan_partitions,
)
from .pass_ import OperatorPartitionPass
from .pipeline import (
    PipelineCost,
    Stage,
    build_stages,
    chunk_duration_ms,
    chunk_type,
    pipeline_cost_ms,
    sequential_cost_ms,
)
from .rewriter import apply_plan, apply_plans
from .rules import RuleContext, entry_domain, rules_for

__all__ = [
    "DPResult",
    "Group",
    "InferenceResult",
    "LancetHyperParams",
    "MOE_ONLY_OPS",
    "OperatorPartitionPass",
    "PipelineCost",
    "RangePlan",
    "RuleContext",
    "Stage",
    "apply_plan",
    "apply_plans",
    "build_groups",
    "build_stages",
    "chunk_duration_ms",
    "chunk_type",
    "entry_domain",
    "forward_length",
    "infer_axes",
    "pipeline_cost_ms",
    "plan_partitions",
    "range_is_moe_only",
    "rules_for",
    "sequential_cost_ms",
]
