"""Declarative workload specification: model x cluster x routing.

A :class:`Scenario` names everything :func:`repro.api.compile` needs to
produce a plan -- the model preset, the target cluster, the per-GPU
batch, and the *routing scenario* (how skewed the expert traffic is) the
plan should be conditioned on.  It is deliberately a plain, serializable
value object: the same scenario compiled in two processes yields the
same graph fingerprint, the same routing signatures, and therefore the
same :class:`~repro.api.store.PlanStore` key.

Named presets cover every workload the benchmark suite runs today
(paper models x clusters x GPU counts, each with a hot-expert variant,
plus the miniature ``tiny`` model used by tests and CI)::

    Scenario.preset("gpt2-s-moe/a100x16")        # paper headline setting
    Scenario.preset("gpt2-s-moe/v100x16-hot")    # heavy hot-expert skew
    Scenario.preset("tiny/a100x8")               # seconds-fast CI scenario
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from ..models import GPT2MoEConfig, ModelGraph, build_training_graph
from ..runtime import ClusterSpec, SyntheticRoutingModel

#: default sequence length of the paper's experiments (Sec. 7)
PAPER_SEQ = 512

#: model names resolvable by :meth:`Scenario.model_config`
MODEL_BUILDERS = {
    "GPT2-S-MoE": GPT2MoEConfig.gpt2_s_moe,
    "GPT2-L-MoE": GPT2MoEConfig.gpt2_l_moe,
    "tiny": GPT2MoEConfig.tiny,
}

#: fallback batch sizes for models the paper table does not cover
_DEFAULT_BATCH = {"tiny": 4}
_DEFAULT_SEQ = {"tiny": 32}


def _resolve_model_name(name: str) -> str:
    for known in MODEL_BUILDERS:
        if name.lower() == known.lower():
            return known
    raise ValueError(
        f"unknown model {name!r}; known: {sorted(MODEL_BUILDERS)}"
    )


@dataclass(frozen=True)
class Scenario:
    """One compile-ready workload: model + cluster + routing scenario.

    Attributes
    ----------
    model:
        Model preset name (``GPT2-S-MoE`` / ``GPT2-L-MoE`` / ``tiny``).
    cluster:
        Cluster kind (``a100`` / ``v100``, aka p4de / p3dn).
    num_gpus:
        Total device count (8 per node beyond one node).
    batch / seq:
        Per-GPU batch and sequence length; ``None`` picks the paper's
        setting for the model/cluster pair.
    gate:
        Gating method (affects which partition rules are legal).
    routing_seed / concentration / hot_experts / hot_boost:
        The synthetic routing realization the plan is conditioned on
        (see :class:`~repro.runtime.SyntheticRoutingModel`).
    pipeline_stages / microbatches / pipeline_schedule:
        Hybrid pipeline x expert parallelism (see :mod:`repro.pipeline`).
        ``pipeline_stages > 1`` splits the model into that many stages,
        each on a ``num_gpus / pipeline_stages`` device subgroup, and
        runs ``microbatches`` microbatches per iteration under the named
        schedule (``1f1b`` or ``gpipe``).  The graph is then built *per
        microbatch at subgroup width* -- expert parallelism (and its
        all-to-alls) lives inside a stage.
    """

    model: str = "GPT2-S-MoE"
    cluster: str = "a100"
    num_gpus: int = 16
    batch: int | None = None
    seq: int | None = None
    gate: str = "switch"
    routing_seed: int = 1
    concentration: float = 16.0
    hot_experts: int = 0
    hot_boost: float = 0.0
    pipeline_stages: int = 1
    microbatches: int = 1
    pipeline_schedule: str = "1f1b"

    def __post_init__(self) -> None:
        object.__setattr__(self, "model", _resolve_model_name(self.model))
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")
        from ..pipeline.stage import SCHEDULES

        if self.pipeline_stages < 1:
            raise ValueError(
                f"pipeline_stages must be >= 1, got {self.pipeline_stages}"
            )
        if self.num_gpus % self.pipeline_stages:
            raise ValueError(
                f"{self.pipeline_stages} pipeline stages must divide "
                f"{self.num_gpus} GPUs"
            )
        if self.microbatches < 1:
            raise ValueError(
                f"microbatches must be >= 1, got {self.microbatches}"
            )
        if self.pipeline_stages == 1 and self.microbatches != 1:
            raise ValueError(
                "microbatches > 1 requires pipeline_stages > 1 (a flat "
                "scenario has no pipeline to fill)"
            )
        if self.pipeline_schedule not in SCHEDULES:
            raise ValueError(
                f"unknown pipeline schedule {self.pipeline_schedule!r}; "
                f"pick from {SCHEDULES}"
            )

    # -- resolution ---------------------------------------------------------

    def model_config(self) -> GPT2MoEConfig:
        """The architecture config this scenario names."""
        return MODEL_BUILDERS[self.model](gate=self.gate)

    def resolved_batch(self) -> int:
        if self.batch is not None:
            return self.batch
        if self.model in _DEFAULT_BATCH:
            return _DEFAULT_BATCH[self.model]
        from ..bench.harness import paper_batch

        return paper_batch(self.cluster, self.model)

    def resolved_seq(self) -> int:
        if self.seq is not None:
            return self.seq
        return _DEFAULT_SEQ.get(self.model, PAPER_SEQ)

    @property
    def staged(self) -> bool:
        """Whether this scenario requests pipeline parallelism."""
        return self.pipeline_stages > 1

    @property
    def name(self) -> str:
        """Canonical display name, e.g. ``gpt2-s-moe/a100x16`` (staged
        scenarios append ``-pp<stages>x<microbatches>``)."""
        suffix = "-hot" if self.hot_boost > 0 else ""
        if self.staged:
            suffix += f"-pp{self.pipeline_stages}x{self.microbatches}"
            if self.pipeline_schedule != "1f1b":
                suffix += f"-{self.pipeline_schedule}"
        return f"{self.model.lower()}/{self.cluster}x{self.num_gpus}{suffix}"

    # -- builders ------------------------------------------------------------

    def build_graph(self) -> ModelGraph:
        """The training-iteration IR of this scenario.

        Flat scenarios build the full iteration; staged scenarios build
        *one microbatch at stage-subgroup width* (``batch /
        microbatches`` per GPU on ``num_gpus / pipeline_stages``
        devices) -- the unit the stage partitioner and the staged
        simulator operate on.
        """
        batch = self.resolved_batch()
        if batch % self.microbatches:
            raise ValueError(
                f"{self.microbatches} microbatches must divide the "
                f"per-GPU batch {batch}"
            )
        return build_training_graph(
            self.model_config(),
            batch=batch // self.microbatches,
            seq=self.resolved_seq(),
            num_gpus=self.num_gpus // self.pipeline_stages,
        )

    def build_cluster(self) -> ClusterSpec:
        return ClusterSpec.for_gpus(self.cluster, self.num_gpus)

    def routing_model(self) -> SyntheticRoutingModel:
        """A fresh realization of this scenario's routing distribution."""
        return SyntheticRoutingModel(
            seed=self.routing_seed,
            concentration=self.concentration,
            hot_experts=self.hot_experts,
            hot_boost=self.hot_boost,
        )

    # -- identity / serialization -------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, obj: dict) -> "Scenario":
        return cls(**obj)

    def with_(self, **changes) -> "Scenario":
        """Copy with the given fields replaced."""
        return replace(self, **changes)

    # -- presets -------------------------------------------------------------

    @classmethod
    def preset(cls, name: str) -> "Scenario":
        """Named scenario preset (see :func:`available_presets`)."""
        presets = _presets()
        if name not in presets:
            raise ValueError(
                f"unknown scenario preset {name!r}; "
                f"available: {', '.join(sorted(presets))}"
            )
        return presets[name]


def _presets() -> dict[str, Scenario]:
    out: dict[str, Scenario] = {}
    for model in ("GPT2-S-MoE", "GPT2-L-MoE"):
        for cluster in ("a100", "v100"):
            for gpus in (16, 32, 64):
                base = Scenario(model=model, cluster=cluster, num_gpus=gpus)
                out[base.name] = base
                # hot-expert skew variant (the workload of the skew /
                # topology benchmarks: a few experts soak up most traffic)
                hot = base.with_(hot_experts=2, hot_boost=0.7)
                out[hot.name] = hot
    tiny = Scenario(model="tiny", cluster="a100", num_gpus=8)
    out[tiny.name] = tiny
    out[tiny.with_(hot_experts=2, hot_boost=0.7).name] = tiny.with_(
        hot_experts=2, hot_boost=0.7
    )
    # staged (hybrid pipeline x expert parallel) workloads: the CI-fast
    # tiny pipeline, its hot-expert variant, and one paper-scale setting
    staged_tiny = tiny.with_(pipeline_stages=2, microbatches=4)
    out[staged_tiny.name] = staged_tiny
    staged_hot = staged_tiny.with_(hot_experts=2, hot_boost=0.7)
    out[staged_hot.name] = staged_hot
    staged_s = Scenario(
        model="GPT2-S-MoE",
        cluster="a100",
        num_gpus=16,
        pipeline_stages=2,
        microbatches=4,
    )
    out[staged_s.name] = staged_s
    return out


def available_presets() -> list[str]:
    """Names accepted by :meth:`Scenario.preset`, sorted."""
    return sorted(_presets())
