"""Tests for partition rules and the CSP axis inferencer (paper Sec. 5.2)."""

import pytest

from repro import GPT2MoEConfig
from repro.ir import AXIS_IRREGULAR as IRR
from repro.ir import NOT_PARTITIONED as NP
from repro.core.partition import (
    RuleContext,
    infer_axes,
    range_is_moe_only,
    rules_for,
)
from repro.models import build_forward


def moe_range(graph, from_op="layernorm", include_combine=True):
    """Slice the instruction range of the first MoE layer."""
    p = graph.program
    pos = p.instr_index()
    ml = graph.moe_layers[0]
    starts = {
        "layernorm": pos[ml.gate_matmul_uid] - 1,
        "gate": pos[ml.gate_matmul_uid],
        "dispatch": pos[ml.dispatch_uid],
        "a2a": pos[ml.a2a_first_uid],
    }
    start = starts[from_op]
    end = pos[ml.combine_uid] + 1 if include_combine else pos[ml.a2a_second_uid] + 1
    return p.instructions[start:end], p


@pytest.fixture(scope="module")
def switch_graph():
    return build_forward(GPT2MoEConfig.tiny(), batch=4, seq=8, num_gpus=2)


@pytest.fixture(scope="module")
def bpr_graph():
    return build_forward(GPT2MoEConfig.tiny(gate="bpr"), batch=4, seq=8, num_gpus=2)


class TestRules:
    def test_matmul_rules(self, switch_graph):
        p = switch_graph.program
        mm = next(i for i in p.instructions if i.op == "matmul")
        ins = [p.type_of(v) for v in mm.inputs]
        outs = [p.type_of(v) for v in mm.outputs]
        rules = rules_for(mm, ins, outs, RuleContext())
        assert ((0, NP), (0,)) in rules  # batch split
        assert ((NP, 1), (2,)) in rules  # weight column split

    def test_attention_batch_only(self, switch_graph):
        p = switch_graph.program
        att = next(i for i in p.instructions if i.op == "attention")
        ins = [p.type_of(v) for v in att.inputs]
        outs = [p.type_of(v) for v in att.outputs]
        rules = rules_for(att, ins, outs, RuleContext())
        assert rules == [((0, 0, 0), (0,))]

    def test_bpr_routing_has_no_rules(self, bpr_graph):
        p = bpr_graph.program
        r = next(i for i in p.instructions if i.op == "routing")
        assert rules_for(r, [p.type_of(v) for v in r.inputs],
                         [p.type_of(v) for v in r.outputs], RuleContext()) == []

    def test_capacity_axis_requires_moe_only(self, switch_graph):
        p = switch_graph.program
        a2a = next(i for i in p.instructions if i.op == "all_to_all")
        ins = [p.type_of(v) for v in a2a.inputs]
        outs = [p.type_of(v) for v in a2a.outputs]
        open_rules = rules_for(a2a, ins, outs, RuleContext(moe_only=False))
        moe_rules = rules_for(a2a, ins, outs, RuleContext(moe_only=True))
        assert ((1,), (1,)) not in open_rules
        assert ((1,), (1,)) in moe_rules

    def test_unknown_op_unpartitionable(self, switch_graph):
        p = switch_graph.program
        ce = next(i for i in p.instructions if i.op == "cross_entropy")
        assert rules_for(ce, [p.type_of(v) for v in ce.inputs],
                         [p.type_of(v) for v in ce.outputs], RuleContext()) == []


class TestInference:
    def test_switch_full_range_matches_paper_fig8a(self, switch_graph):
        instrs, p = moe_range(switch_graph, "layernorm")
        res = infer_axes(instrs, p)
        assert res is not None
        by_op = {i.op: i for i in instrs}
        assert res.axis_of(by_op["layernorm"].outputs[0]) == 0
        assert res.axis_of(by_op["routing"].outputs[0]) == IRR
        assert res.axis_of(by_op["expert_ffn"].outputs[0]) == IRR
        assert res.axis_of(by_op["moe_combine"].outputs[0]) == 0
        # weights replicated
        assert res.axis_of(by_op["expert_ffn"].inputs[1]) == NP

    def test_moe_only_range_uses_capacity_axis(self, switch_graph):
        instrs, p = moe_range(switch_graph, "a2a", include_combine=False)
        assert range_is_moe_only(instrs)
        res = infer_axes(instrs, p)
        assert res is not None
        for i in instrs:
            assert res.axis_of(i.outputs[0]) == 1

    def test_bpr_gate_in_range_infeasible(self, bpr_graph):
        instrs, p = moe_range(bpr_graph, "gate")
        assert infer_axes(instrs, p) is None

    def test_bpr_from_dispatch_feasible(self, bpr_graph):
        instrs, p = moe_range(bpr_graph, "dispatch")
        res = infer_axes(instrs, p)
        assert res is not None
        # the route enters the range irregularly (sliced by token chunk)
        route_vid = instrs[0].inputs[1]
        assert res.axis_of(route_vid) == IRR

    def test_empty_range(self, switch_graph):
        assert infer_axes([], switch_graph.program) is None

    def test_range_with_only_dense_compute(self, switch_graph):
        """A pure-compute range is partitionable at the batch axis."""
        p = switch_graph.program
        pos = p.instr_index()
        ml = switch_graph.moe_layers[0]
        # self-attention block before the MoE layer
        start = pos[ml.gate_matmul_uid] - 10
        instrs = p.instructions[max(start, 0) : pos[ml.gate_matmul_uid] - 1]
        res = infer_axes(instrs, p)
        assert res is not None
        for ins in instrs:
            assert all(res.axis_of(o) in (0,) for o in ins.outputs)

    def test_expert_choice_gate_infeasible(self):
        g = build_forward(
            GPT2MoEConfig.tiny(gate="expert_choice"), batch=4, seq=8, num_gpus=2
        )
        instrs, p = moe_range(g, "gate")
        assert infer_axes(instrs, p) is None
