"""Communication cost model (paper Sec. 3).

Built by profiling collectives at geometrically spaced sizes (1 KB, 2 KB,
4 KB, ... up to the largest buffer the model communicates) and linearly
interpolating between the sampled points.

Irregular all-to-alls have runtime-dependent sizes unknown at compile
time; the paper uses a *static-shape approximation*: the cost of an
n-way-partitioned all-to-all with original capacity ``C`` is the profiled
(uniform) cost at capacity ``C / n``.  :meth:`CommCostModel.a2a_partitioned_ms`
implements exactly that, which is where the (small) prediction error of
Fig. 14 comes from.

Beyond the paper, :meth:`CommCostModel.a2a_skewed_ms` conditions the
estimate on a realized routing distribution: given a per-device load
vector (:class:`~repro.runtime.routing_model.RoutingSignature`, derived
from observed dispatch counts), the collective is priced at the
*bottleneck* device's bytes instead of the uniform mean.  With a
balanced signature this reduces to the legacy static-shape estimate
bit-for-bit, so skew-awareness is strictly opt-in.

Also beyond the paper, :meth:`CommCostModel.a2a_hierarchical_ms` prices
the 2-hop topology-aware all-to-all (intra-node gather, node-aggregated
inter-node exchange, intra-node scatter -- see
:mod:`repro.runtime.topology`) and :meth:`CommCostModel.a2a_best_ms`
resolves the per-collective flat/hierarchical choice the planner makes
when :attr:`CostEstimator.enable_hierarchical` is set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir import Instruction, Program
from ..runtime.cluster import ClusterSpec
from ..runtime.routing_model import RoutingSignature
from .cache import LRUCache
from .profiler import CachingOpProfiler

#: default bound of the signature-keyed all-to-all prediction cache.
#: Long runs with many distinct routing signatures otherwise grow it
#: without limit; 4096 entries comfortably cover every (bytes, parts)
#: pair of a large model times dozens of live signatures.
DEFAULT_A2A_CACHE_SIZE = 4096


@dataclass
class CommCostModel:
    """Piecewise-linear interpolated collective cost model."""

    cluster: ClusterSpec
    min_bytes: float = 1024.0
    max_bytes: float = 2.0**31  # 2 GB upper anchor
    _a2a_pts: tuple = field(default=None, repr=False)  # type: ignore[assignment]
    _ar_pts: tuple = field(default=None, repr=False)  # type: ignore[assignment]
    #: memoized uniform-traffic hierarchical phase coefficients
    _hier_uniform: tuple | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        sizes = [self.min_bytes]
        while sizes[-1] < self.max_bytes:
            sizes.append(sizes[-1] * 2)
        sizes = np.asarray(sizes)
        a2a = np.asarray([self.cluster.a2a_time_ms(s) for s in sizes])
        ar = np.asarray([self.cluster.allreduce_time_ms(s) for s in sizes])
        self._a2a_pts = (sizes, a2a)
        self._ar_pts = (sizes, ar)

    @staticmethod
    def _interp(pts: tuple, nbytes: float) -> float:
        sizes, times = pts
        if nbytes > sizes[-1]:
            # beyond the profiled range: extrapolate with the bandwidth
            # (slope) of the last profiled segment instead of clamping,
            # so multi-GB buffers are not priced as if they were 2 GB
            slope = (times[-1] - times[-2]) / (sizes[-1] - sizes[-2])
            return float(times[-1] + (nbytes - sizes[-1]) * slope)
        # below min_bytes np.interp clamps to the smallest sample, which
        # is the latency floor -- the right model for tiny buffers
        return float(np.interp(nbytes, sizes, times))

    def a2a_ms(self, nbytes: float) -> float:
        """Predicted uniform all-to-all time for a per-device buffer size."""
        return self._interp(self._a2a_pts, nbytes)

    def a2a_partitioned_ms(self, full_nbytes: float, parts: int) -> float:
        """Static-shape approximation for one chunk of an n-way partitioned
        (irregular) all-to-all: the uniform cost at capacity ``C / n``."""
        if parts < 1:
            raise ValueError("parts must be >= 1")
        return self.a2a_ms(full_nbytes / parts)

    def a2a_skewed_ms(
        self,
        full_nbytes: float,
        parts: int = 1,
        signature: RoutingSignature | None = None,
    ) -> float:
        """Routing-conditioned estimate of one (chunk of an) irregular
        all-to-all: the collective completes with its bottleneck device,
        so it is priced at that device's *realized* bytes,
        ``signature.mean_send_bytes * signature.bottleneck`` (falling
        back to the static ``full_nbytes`` scale when the signature
        carries no absolute volume).  Capacity clipping makes realized
        traffic differ from the padded size in both directions, which is
        exactly the error the uniform static-shape approximation makes.

        With ``signature=None`` or a balanced signature this is exactly
        :meth:`a2a_partitioned_ms` (same float ops, bit-for-bit).
        """
        if parts < 1:
            raise ValueError("parts must be >= 1")
        if signature is None or signature.bottleneck == 1.0:
            return self.a2a_ms(full_nbytes / parts)
        base = (
            signature.mean_send_bytes
            if signature.mean_send_bytes > 0
            else full_nbytes
        )
        return self.a2a_ms(base * signature.bottleneck / parts)

    def allreduce_ms(self, nbytes: float) -> float:
        """Predicted all-reduce time for a gradient bucket."""
        return self._interp(self._ar_pts, nbytes)

    # -- hierarchical (2-hop) all-to-all pricing ------------------------------

    @property
    def hierarchy_helps(self) -> bool:
        """Whether the 2-hop algorithm can ever beat the flat exchange
        on this cluster: there must be a node boundary, and the NVLink
        detour must be faster than a GPU's NIC share.  When False every
        hierarchical estimate delegates to the flat one, so single-node
        (or bandwidth-symmetric) pricing is unchanged bit-for-bit."""
        return (
            self.cluster.multi_node
            and self.cluster.intra_bw_gbps > self.cluster.nic_per_gpu_gbps
        )

    def _uniform_hier_coeffs(self) -> tuple[float, float, float]:
        """Phase-load coefficients of perfectly uniform traffic (each GPU
        spreads its send bytes evenly over all peers, self included)."""
        if self._hier_uniform is None:
            g = self.cluster.num_gpus
            pair = np.full((g, g), 1.0 / g)
            self._hier_uniform = self.cluster.topology.phase_load_coefficients(
                pair
            )
        return self._hier_uniform

    def a2a_hierarchical_ms(
        self,
        full_nbytes: float,
        parts: int = 1,
        signature: RoutingSignature | None = None,
    ) -> float:
        """Predicted time of one (chunk of an) irregular all-to-all run
        with the 2-hop hierarchical algorithm.

        The three phases serialize; each is priced at its bottleneck
        load -- per-GPU NVLink stream for the intra phases, per-node
        aggregate NIC for the exchange phase -- scaled from the
        signature's phase-load coefficients (uniform-traffic coefficients
        when the signature carries none).  Reduces to the flat estimate
        when :attr:`hierarchy_helps` is False.
        """
        if parts < 1:
            raise ValueError("parts must be >= 1")
        if not self.hierarchy_helps:
            return self.a2a_skewed_ms(full_nbytes, parts, signature)
        if signature is not None and signature.mean_send_bytes > 0:
            base = signature.mean_send_bytes
        else:
            base = full_nbytes
        if signature is not None and signature.hier_load is not None:
            g1, g2, g3 = signature.hier_load
        else:
            g1, g2, g3 = self._uniform_hier_coeffs()
            if signature is not None and not signature.is_uniform:
                # skewed realization summarized without a topology: the
                # phase structure is unknown, so scale the uniform
                # coefficients by the bottleneck load -- a conservative
                # estimate mirroring how flat pricing treats the same
                # signature (never the raw uniform price, which would
                # grossly underprice the 2-hop algorithm under skew)
                b = signature.bottleneck
                g1, g2, g3 = g1 * b, g2 * b, g3 * b
        b = base / parts
        cl = self.cluster
        transfer_s = (g1 + g3) * b / (cl.intra_bw_gbps * 1e9) + g2 * b / (
            cl.node_nic_gbps * 1e9
        )
        return cl.topology.latency_ms() + transfer_s * 1e3

    def a2a_best_ms(
        self,
        full_nbytes: float,
        parts: int = 1,
        signature: RoutingSignature | None = None,
    ) -> tuple[float, str]:
        """Cheapest algorithm for one (chunk of an) irregular all-to-all:
        ``(predicted ms, 'flat' | 'hierarchical')``.  This is the per-a2a
        decision the partition DP and the dW-schedule pass plan with when
        hierarchical collectives are enabled.

        The 2-hop algorithm is only *chosen* when its price is trustworthy:
        uniform traffic (exact uniform coefficients) or a signature that
        carries measured phase loads (``hier_load``).  A skewed signature
        summarized without a topology keeps the collective flat -- its
        hierarchical estimate is a guess, and acting on a guessed win
        could make the plan slower than flat.
        """
        flat = self.a2a_skewed_ms(full_nbytes, parts, signature)
        if not self.hierarchy_helps:
            return flat, "flat"
        if (
            signature is not None
            and not signature.is_uniform
            and signature.hier_load is None
        ):
            return flat, "flat"
        hier = self.a2a_hierarchical_ms(full_nbytes, parts, signature)
        if hier < flat:
            return hier, "hierarchical"
        return flat, "flat"


@dataclass
class CostEstimator:
    """Lancet's internal per-instruction cost oracle.

    Combines the caching op profiler (compute ops) and the communication
    cost model (collectives).  This is the cost the optimization passes
    *plan* with; the ground-truth simulator may disagree (irregular
    realized sizes, load imbalance), which is what the Fig. 14 accuracy
    experiment quantifies.

    When per-layer :class:`RoutingSignature` observations are installed
    via :meth:`set_signatures`, every irregular all-to-all estimate is
    conditioned on its layer's realized load distribution, which is what
    makes the dW-schedule pass and the partition DP optimize for the
    actual routing rather than the uniform approximation.
    """

    profiler: CachingOpProfiler
    comm: CommCostModel
    #: per-MoE-layer routing observations (layer key -> signature); the
    #: ``None`` key acts as the default for layers without their own entry
    signatures: dict | None = None
    #: LRU cap of the all-to-all prediction cache (``None`` = unbounded)
    a2a_cache_size: int | None = DEFAULT_A2A_CACHE_SIZE
    #: when True, every irregular all-to-all estimate is the cheaper of
    #: the flat and the 2-hop hierarchical algorithm (per chunk, per
    #: signature), and the chosen algorithm is available via
    #: :meth:`a2a_algorithm`.  Off by default: plans are then priced
    #: exactly as the flat-only legacy model.
    enable_hierarchical: bool = False
    #: memoized all-to-all predictions.  Keyed by (bytes, parts,
    #: signature key) -- the signature component guarantees entries
    #: cached under uniform routing are never reused once the estimator
    #: is re-targeted at a skewed realization (and vice versa).  Bounded:
    #: every distinct signature mints fresh keys, so an unbounded dict
    #: would leak across a long re-optimizing run.
    _a2a_cache: LRUCache = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self._a2a_cache is None:
            self._a2a_cache = LRUCache(
                self.a2a_cache_size, name="a2a-estimates"
            )

    def set_signatures(self, signatures: dict | None) -> None:
        """Install (or clear, with ``None``) routing observations.

        The prediction cache is *not* flushed: its keys embed the
        signature, so stale uniform-routing entries cannot leak into
        skew-aware queries after a re-optimization.
        """
        self.signatures = dict(signatures) if signatures else None

    def signature_for(self, instr: Instruction) -> RoutingSignature | None:
        """The routing signature governing one all-to-all, if any."""
        if not self.signatures:
            return None
        key = instr.attrs.get("moe_layer", instr.origin or instr.uid)
        sig = self.signatures.get(key)
        if sig is None:
            sig = self.signatures.get(None)
        return sig

    def _a2a_choice(
        self,
        nbytes: float,
        parts: int,
        sig: RoutingSignature | None,
        algo: str | None = None,
    ) -> tuple[float, str]:
        """Memoized ``(predicted ms, algorithm)`` of one irregular
        all-to-all chunk.  ``algo`` pins the algorithm ('flat' or
        'hierarchical', e.g. from an annotated instruction); ``None``
        resolves it -- the cheaper of the two when
        :attr:`enable_hierarchical` is set, else always 'flat'."""
        if algo is None and not self.enable_hierarchical:
            algo = "flat"
        key = (nbytes, parts, None if sig is None else sig.key(digits=6), algo)
        hit = self._a2a_cache.get(key)
        if hit is None:
            if algo == "flat":
                hit = (self.comm.a2a_skewed_ms(nbytes, parts, sig), "flat")
            elif algo == "hierarchical":
                hit = (
                    self.comm.a2a_hierarchical_ms(nbytes, parts, sig),
                    "hierarchical",
                )
            else:
                hit = self.comm.a2a_best_ms(nbytes, parts, sig)
            self._a2a_cache.put(key, hit)
        return hit

    def _a2a_irregular_ms(
        self,
        nbytes: float,
        parts: int,
        sig: RoutingSignature | None,
        algo: str | None = None,
    ) -> float:
        return self._a2a_choice(nbytes, parts, sig, algo)[0]

    def a2a_chunk_ms(
        self, instr: Instruction, program: Program, parts: int, irregular: bool
    ) -> float:
        """Predicted duration of one chunk of a *planned* k-way split of
        an all-to-all (used by the pipeline scheduler before any IR is
        rewritten).  Irregular chunks use the static-shape approximation,
        conditioned on the layer's routing signature when one is set,
        and priced at the cheaper of the flat / hierarchical algorithm
        when hierarchical collectives are enabled (an explicit
        ``a2a_algo`` annotation on the instruction pins the choice)."""
        nbytes = float(program.type_of(instr.inputs[0]).nbytes)
        if irregular:
            return self._a2a_irregular_ms(
                nbytes,
                parts,
                self.signature_for(instr),
                instr.attrs.get("a2a_algo"),
            )
        return self.comm.a2a_ms(nbytes / parts)

    def _irregular_a2a_query(
        self, instr: Instruction, program: Program
    ) -> tuple[float, int]:
        """(effective full bytes, parts) of one irregular all-to-all.

        Irregular A2As move only realized tokens, not padding: the static
        buffer size is scaled by the expected fill fraction (tokens /
        total capacity slots); a partitioned chunk carries the original
        size priced at ``parts``-way splitting (static-shape
        approximation).
        """
        buf_t = program.type_of(instr.inputs[0])
        nbytes = float(buf_t.nbytes)
        tokens = instr.attrs.get("tokens")
        if tokens is not None and buf_t.rank == 3:
            slots = buf_t.shape[0] * buf_t.shape[1]
            nbytes *= min(1.0, tokens / slots)
        parts = 1
        if instr.partition is not None:
            parts = instr.partition[1]
        return nbytes, parts

    def a2a_algorithm(
        self,
        instr: Instruction,
        program: Program,
        respect_annotation: bool = True,
    ) -> str:
        """The algorithm one irregular all-to-all is planned to run with:
        its explicit ``a2a_algo`` annotation (unless
        ``respect_annotation=False``, which re-resolves the choice for
        the currently installed signature), or the cheaper of flat /
        hierarchical (always 'flat' when hierarchical collectives are
        disabled)."""
        if instr.op != "all_to_all" or not instr.attrs.get("irregular"):
            return "flat"
        nbytes, parts = self._irregular_a2a_query(instr, program)
        pinned = instr.attrs.get("a2a_algo") if respect_annotation else None
        return self._a2a_choice(
            nbytes, parts, self.signature_for(instr), pinned
        )[1]

    def duration_ms(self, instr: Instruction, program: Program) -> float:
        """Predicted duration of one instruction."""
        if instr.op == "all_to_all":
            if instr.attrs.get("irregular"):
                nbytes, parts = self._irregular_a2a_query(instr, program)
                return self._a2a_irregular_ms(
                    nbytes,
                    parts,
                    self.signature_for(instr),
                    instr.attrs.get("a2a_algo"),
                )
            return self.comm.a2a_ms(float(program.type_of(instr.inputs[0]).nbytes))
        if instr.op == "allreduce":
            nbytes = float(program.type_of(instr.inputs[0]).nbytes)
            return self.comm.allreduce_ms(nbytes)
        irr_parts = int(instr.attrs.get("irr_parts", 1))
        if irr_parts > 1:
            # irregular chunk: price at its realized occupancy (~C/k),
            # mirroring the runtime's grouped-kernel behaviour
            from ..runtime.simulate import _scale_capacity

            in_types = [
                _scale_capacity(program.type_of(v), irr_parts)
                for v in instr.inputs
            ]
            attrs = dict(instr.attrs)
            if "capacity" in attrs:
                attrs["capacity"] = max(
                    1, -(-int(attrs["capacity"]) // irr_parts)
                )
            return self.profiler.op_time_ms(instr.op, in_types, attrs)
        return self.profiler.instr_time_ms(instr, program)

    def predict_iteration_ms(self, program: Program) -> float:
        """Predicted end-to-end iteration time of a program.

        Runs the same two-stream schedule simulation as the ground truth,
        but with predicted per-op costs (the paper's cost-model output
        compared against measurement in Fig. 14).
        """
        from ..runtime.simulate import simulate_program

        return simulate_program(program, duration_fn=self.duration_ms).makespan
