"""Compiler IR substrate: tensors, ops, programs, autodiff, passes.

This package is the stand-in for RAF/TVM in the paper: a shape-static,
instruction-sequence IR of a full training iteration that Lancet's two
optimization passes rewrite.
"""

from .autodiff import build_backward, insert_gradient_sync, insert_sgd
from .graph import DependencyGraph, verify_schedulable
from .instruction import Instruction, InstrKind, ensure_uid_floor
from .ops import OpSpec, Stream, all_ops, get_op
from .passes import Pass, PassManager, PassTiming
from .program import Program
from .serialize import (
    IR_SCHEMA_VERSION,
    SerializationError,
    program_from_json,
    program_to_json,
    structural_program_dict,
)
from .tensor import (
    AXIS_IRREGULAR,
    NOT_PARTITIONED,
    Dim,
    DType,
    TensorType,
    Value,
    axis_name,
    route_type,
)
from .validate import ValidationError, validate

__all__ = [
    "AXIS_IRREGULAR",
    "IR_SCHEMA_VERSION",
    "NOT_PARTITIONED",
    "DType",
    "DependencyGraph",
    "Dim",
    "Instruction",
    "InstrKind",
    "SerializationError",
    "OpSpec",
    "Pass",
    "PassManager",
    "PassTiming",
    "Program",
    "Stream",
    "TensorType",
    "ValidationError",
    "Value",
    "all_ops",
    "axis_name",
    "build_backward",
    "ensure_uid_floor",
    "get_op",
    "insert_gradient_sync",
    "insert_sgd",
    "program_from_json",
    "program_to_json",
    "route_type",
    "structural_program_dict",
    "validate",
    "verify_schedulable",
]
