"""Tests for the GPU performance model and the cluster network model."""

import numpy as np
import pytest

from repro.runtime import (
    A100,
    COMPILED,
    DEEPSPEED,
    TUTEL,
    V100,
    ClusterSpec,
)


class TestGPUSpec:
    def test_efficiency_saturates(self):
        assert A100.matmul_efficiency(1e6) < A100.matmul_efficiency(1e12)
        assert A100.matmul_efficiency(1e15) <= A100.matmul_eff_max

    def test_flop_time_superlinear_for_small_ops(self):
        """Halving the FLOPs less than halves the rate (efficiency drop):
        a chunked matmul is relatively more expensive -- paper Challenge 2."""
        big = A100.flop_time_ms(40e9)
        small = A100.flop_time_ms(10e9)
        assert small > big / 4

    def test_roofline(self):
        # compute-bound op
        assert A100.op_time_ms(1e12, 1e6) == A100.flop_time_ms(1e12)
        # memory-bound op
        assert A100.op_time_ms(1e6, 1e9) == A100.mem_time_ms(1e9)

    def test_a100_faster_than_v100(self):
        assert A100.flop_time_ms(1e12) < V100.flop_time_ms(1e12)
        assert A100.mem_time_ms(1e9) < V100.mem_time_ms(1e9)

    def test_zero_work(self):
        assert A100.op_time_ms(0, 0) == 0.0


class TestFrameworkProfiles:
    def test_eager_has_higher_launch_cost(self):
        assert TUTEL.launch_us > COMPILED.launch_us
        assert DEEPSPEED.dispatch_mult > TUTEL.dispatch_mult

    def test_launch_ms(self):
        assert COMPILED.launch_ms(3) == pytest.approx(3 * COMPILED.launch_us * 1e-3)


class TestClusterTopology:
    def test_presets(self):
        p4 = ClusterSpec.p4de(2)
        assert p4.num_gpus == 16 and p4.gpu.name == "A100"
        p3 = ClusterSpec.p3dn(8)
        assert p3.num_gpus == 64 and p3.gpu.name == "V100"

    def test_for_gpus(self):
        c = ClusterSpec.for_gpus("v100", 32)
        assert c.num_nodes == 4
        c2 = ClusterSpec.for_gpus("a100", 2)
        assert c2.num_gpus == 2 and not c2.multi_node
        with pytest.raises(ValueError):
            ClusterSpec.for_gpus("tpu", 8)
        with pytest.raises(ValueError):
            ClusterSpec.for_gpus("a100", 12)


class TestAllToAllModel:
    def test_monotone_in_bytes(self):
        c = ClusterSpec.p4de(2)
        assert c.a2a_time_ms(1 << 20) < c.a2a_time_ms(1 << 24)

    def test_inter_node_slower_than_intra(self):
        single = ClusterSpec.for_gpus("a100", 8)
        multi = ClusterSpec.p4de(2)
        nbytes = 16 * 2**20
        assert multi.a2a_time_ms(nbytes) > single.a2a_time_ms(nbytes)

    def test_latency_floor(self):
        c = ClusterSpec.p4de(2)
        assert c.a2a_time_ms(1) >= c.alpha_ms()

    def test_irregular_uniform_close_to_dense_model(self):
        """A perfectly uniform pair matrix should cost about the same as
        the uniform model (plus the size-exchange phase)."""
        c = ClusterSpec.p4de(2)
        g = c.num_gpus
        total = 8 * 2**20
        pair = np.full((g, g), total / g)
        t_irr = c.a2a_time_ms_irregular(pair)
        t_uni = c.a2a_time_ms(total)
        assert t_irr == pytest.approx(t_uni + c.alpha_ms(), rel=0.15)

    def test_irregular_hotspot_costs_more(self):
        c = ClusterSpec.p4de(2)
        g = c.num_gpus
        total = 8 * 2**20
        uniform = np.full((g, g), total / g)
        hot = uniform.copy()
        hot[:, 0] *= 3  # everyone over-sends to device 0
        assert c.a2a_time_ms_irregular(hot) > c.a2a_time_ms_irregular(uniform)

    def test_irregular_shape_checked(self):
        c = ClusterSpec.p4de(2)
        with pytest.raises(ValueError):
            c.a2a_time_ms_irregular(np.zeros((4, 4)))


class TestAllReduceModel:
    def test_hierarchical_cheaper_than_flat_ring(self):
        """All-reduce crosses the node boundary once per byte; all-to-all
        pays per-GPU NIC share -- the asymmetry the paper relies on."""
        c = ClusterSpec.p4de(2)
        nbytes = 64 * 2**20
        assert c.allreduce_time_ms(nbytes) < c.a2a_time_ms(nbytes)

    def test_zero_bytes(self):
        assert ClusterSpec.p4de(2).allreduce_time_ms(0) == 0.0

    def test_single_gpu_free(self):
        c = ClusterSpec.for_gpus("a100", 8)
        one = ClusterSpec(
            name="one", gpu=c.gpu, num_nodes=1, gpus_per_node=1
        )
        assert one.allreduce_time_ms(1 << 20) == 0.0
