"""The Operator Partition Pass (paper Sec. 5, Fig. 7).

Chains the pieces: DP range selection (:mod:`.dp`) -> axis inference
(:mod:`.axis_inference`) -> pipeline cost (:mod:`.pipeline`) -> IR
rewrite (:mod:`.rewriter`).
"""

from __future__ import annotations

from ...ir import Pass, Program
from ..cost_model import CostEstimator
from .dp import DPResult, LancetHyperParams, PlannerState, plan_partitions
from .rewriter import apply_plans


class OperatorPartitionPass(Pass):
    """Partition + pipeline the forward pass around each all-to-all.

    Pass a persistent :class:`PlannerState` to re-plan incrementally
    across optimizer runs (the online re-optimization loop does); without
    one, every run plans cold.
    """

    name = "operator-partition"

    def __init__(
        self,
        costs: CostEstimator,
        params: LancetHyperParams | None = None,
        state: PlannerState | None = None,
    ) -> None:
        self.costs = costs
        self.params = params or LancetHyperParams()
        self.state = state
        self.result: DPResult = DPResult()

    def run(self, program: Program) -> Program:
        self.result = plan_partitions(
            program, self.costs, self.params, state=self.state
        )
        apply_plans(program, self.result.plans)
        return program
