"""Headline claims (paper abstract / Sec. 1 and Sec. 7 summary).

* Lancet reduces non-overlapping communication time by as much as 77%.
* Lancet achieves up to 1.3x end-to-end speedup over state-of-the-art.

Also measures the plan-artifact story of :mod:`repro.api` on the
headline setting (GPT2-S-MoE / a100 x 16): cold ``compile()`` wall time
vs a ``PlanStore`` warm load, which must skip the planner entirely and
reproduce the cold plan's prediction bit-for-bit.
"""

from __future__ import annotations

import tempfile
import time

from ..formatting import format_table
from ..harness import Setting, run_setting
from .common import FigureResult


def plan_store_metrics(preset: str = "gpt2-s-moe/a100x16") -> dict:
    """Cold-compile vs PlanStore-warm-load comparison for one scenario.

    The warm path stands in for a second process: a fresh
    :class:`~repro.api.PlanStore` instance reading the directory the
    cold compile populated.
    """
    from ...api import PlanStore, Scenario, compile
    from ...api import compiler as api_compiler

    scenario = Scenario.preset(preset)
    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        cold_plan = compile(scenario, store=PlanStore(tmp))
        cold_s = time.perf_counter() - t0

        # measure -- don't assume -- that the warm path never reaches
        # the planner: count optimizer constructions during the lookup
        constructions = []
        real_optimizer = api_compiler.LancetOptimizer

        def probing_optimizer(*args, **kwargs):
            opt = real_optimizer(*args, **kwargs)
            constructions.append(opt)
            return opt

        api_compiler.LancetOptimizer = probing_optimizer
        try:
            # best of 3: each round uses a fresh PlanStore instance (a
            # stand-in for a new process, always through the disk), and
            # the minimum filters one-off scheduler/page-cache noise so
            # the >= 50x gate does not flake on loaded CI runners
            warm_s = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                warm_plan = compile(scenario, store=PlanStore(tmp))
                warm_s = min(warm_s, time.perf_counter() - t0)
        finally:
            api_compiler.LancetOptimizer = real_optimizer

    # if the warm path did run a planner, report its real eval count so
    # the regression gate (baseline: 0) fails with the actual magnitude
    warm_cost_evals = (
        0
        if not constructions
        else warm_plan.planner.get("num_cost_evals", -1)
    )
    return {
        "plan_scenario": preset,
        "plan_cold_compile_s": cold_s,
        "plan_warm_load_s": warm_s,
        "plan_store_speedup": cold_s / warm_s,
        "plan_warm_from_store": warm_plan.from_store,
        # deterministic invariants (gated by check_regression.py):
        # a warm load runs zero planner cost evaluations and reproduces
        # the cold plan's prediction exactly
        "plan_warm_cost_evals": warm_cost_evals,
        "plan_warm_predicted_delta_ms": abs(
            warm_plan.predicted_iteration_ms - cold_plan.predicted_iteration_ms
        ),
        "plan_cold_cost_evals": cold_plan.planner.get("num_cost_evals", -1),
    }


def run(
    models=("GPT2-S-MoE", "GPT2-L-MoE"),
    clusters=("v100", "a100"),
    gpu_counts=(16, 32),
) -> FigureResult:
    speedups = []
    comm_reductions = []
    rows = []
    for model in models:
        for cluster in clusters:
            for gpus in gpu_counts:
                ms = {}
                for fw in ("raf", "tutel", "lancet"):
                    ms[fw] = run_setting(
                        Setting(
                            model=model,
                            cluster_kind=cluster,
                            num_gpus=gpus,
                            framework=fw,
                        )
                    )
                best = min(ms["raf"].iteration_ms, ms["tutel"].iteration_ms)
                speedup = best / ms["lancet"].iteration_ms
                red = 1.0 - ms["lancet"].comm_only_ms / max(
                    min(ms["raf"].comm_only_ms, ms["tutel"].comm_only_ms), 1e-9
                )
                speedups.append(speedup)
                comm_reductions.append(red)
                rows.append(
                    {
                        "model": model,
                        "cluster": cluster,
                        "gpus": gpus,
                        "speedup": speedup,
                        "comm_reduction_pct": 100 * red,
                        "lancet_ms": ms["lancet"].iteration_ms,
                    }
                )

    table = format_table(
        ["Model", "Cluster", "GPUs", "Speedup vs best baseline", "Non-ovl comm red. %"],
        [
            [r["model"], r["cluster"], r["gpus"], r["speedup"], r["comm_reduction_pct"]]
            for r in rows
        ],
        title="Headline claims",
    )
    notes = {
        "max_speedup": max(speedups),
        "max_comm_reduction_pct": 100 * max(comm_reductions),
        "paper": "up to 1.3x speedup; up to 77% non-overlapped comm reduction",
    }
    notes.update(plan_store_metrics())
    # lower-is-better metrics diffed against the checked-in baseline:
    # simulated lancet iteration times (deterministic) plus the plan
    # round-trip invariants (0 warm cost evals, 0 prediction delta)
    notes["regression_metrics"] = {
        **{
            "lancet_ms_{model}_{cluster}_g{gpus}".format(**r): r["lancet_ms"]
            for r in rows
        },
        "plan_warm_cost_evals": float(notes["plan_warm_cost_evals"]),
        "plan_warm_predicted_delta_ms": notes["plan_warm_predicted_delta_ms"],
    }
    return FigureResult("headline", "headline claims", rows, table, notes)
