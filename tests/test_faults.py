"""Fault model, injector fidelity, detector, and trainer recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GPT2MoEConfig, LancetOptimizer, build_training_graph
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    RemappedRoutingModel,
    StragglerDetector,
    derive_degraded,
)
from repro.runtime import (
    ClusterSpec,
    SimulationConfig,
    SyntheticRoutingModel,
    simulate_cluster,
)


@pytest.fixture(scope="module")
def cluster8() -> ClusterSpec:
    return ClusterSpec.for_gpus("a100", 8)


@pytest.fixture(scope="module")
def graph8():
    return build_training_graph(
        GPT2MoEConfig.tiny(), batch=8, seq=16, num_gpus=8
    )


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor_strike", target=0)
        with pytest.raises(ValueError):
            FaultSpec("straggler", target=0, severity=0.5)  # must slow down
        with pytest.raises(ValueError):
            FaultSpec("nic_degrade", target=0, severity=1.5)  # a fraction
        with pytest.raises(ValueError):
            FaultSpec("straggler", target=0, start_step=5, end_step=5)

    def test_active_window_is_half_open(self):
        f = FaultSpec("straggler", target=1, start_step=3, end_step=7)
        assert not f.active_at(2)
        assert f.active_at(3) and f.active_at(6)
        assert not f.active_at(7)
        persistent = FaultSpec("straggler", target=1, start_step=3)
        assert persistent.active_at(10**9)

    def test_round_trip(self):
        f = FaultSpec("nic_degrade", target=2, severity=0.25, start_step=1)
        assert FaultSpec.from_dict(f.to_dict()) == f


class TestFaultSchedule:
    def test_round_trip_and_active_set(self):
        sched = FaultSchedule(
            (
                FaultSpec("straggler", 1, severity=2.0, start_step=0,
                          end_step=4),
                FaultSpec("rank_loss", 3, start_step=2),
            )
        )
        assert FaultSchedule.from_dict(sched.to_dict()) == sched
        assert [f.kind for f in sched.active_at(0)] == ["straggler"]
        assert {f.kind for f in sched.active_at(3)} == {
            "straggler", "rank_loss",
        }
        assert [f.kind for f in sched.active_at(9)] == ["rank_loss"]
        assert 0 in sched.transition_steps()
        assert {2, 4} <= set(sched.transition_steps())

    def test_random_is_seed_deterministic(self):
        a = FaultSchedule.random(8, 8, seed=7)
        b = FaultSchedule.random(8, 8, seed=7)
        c = FaultSchedule.random(8, 8, seed=8)
        assert a == b
        assert a != c
        assert all(f.kind in FAULT_KINDS for f in a)


class TestDeriveDegraded:
    def test_straggler_multiplies_slowdown(self, cluster8):
        deg = derive_degraded(
            cluster8,
            [
                FaultSpec("straggler", 2, severity=2.0),
                FaultSpec("straggler", 2, severity=1.5),
            ],
        )
        assert deg.slowdowns[2] == pytest.approx(3.0)
        assert deg.worst_slowdown == pytest.approx(3.0)
        assert deg.spec is cluster8  # no network fault: spec unchanged

    def test_nic_degrade_rescales_worst_node(self):
        cluster = ClusterSpec.for_gpus("a100", 16)  # 2 nodes
        deg = derive_degraded(
            cluster,
            [
                FaultSpec("nic_degrade", 0, severity=0.5),
                FaultSpec("nic_degrade", 1, severity=0.25),
            ],
        )
        # worst node dominates: every inter-node path prices at 1/4
        assert deg.spec.node_nic_gbps == pytest.approx(
            cluster.node_nic_gbps * 0.25
        )
        assert deg.spec.alpha_inter_us == pytest.approx(
            cluster.alpha_inter_us / 0.25
        )
        assert deg.spec.intra_bw_gbps == cluster.intra_bw_gbps

    def test_rank_loss_buddy_is_same_node_first(self):
        cluster = ClusterSpec.for_gpus("a100", 16)  # 2 nodes of 8
        deg = derive_degraded(cluster, [FaultSpec("rank_loss", 9)])
        assert deg.lost_ranks == (9,)
        ((lost, buddy),) = deg.buddy_of
        assert lost == 9 and buddy == 10  # same node, next rank
        assert deg.slowdowns[10] == pytest.approx(2.0)  # 1 + k shards
        assert deg.slowdowns[9] == 1.0  # ghost at nominal speed

    def test_plan_spec_folds_worst_slowdown_into_gpu(self, cluster8):
        deg = derive_degraded(cluster8, [FaultSpec("straggler", 0, 2.0)])
        assert deg.plan_spec.gpu.peak_tflops == pytest.approx(
            cluster8.gpu.peak_tflops / 2.0
        )
        assert deg.plan_spec.name != cluster8.name

    def test_invalid_targets(self, cluster8):
        with pytest.raises(ValueError):
            derive_degraded(cluster8, [FaultSpec("straggler", 8)])
        with pytest.raises(ValueError):
            derive_degraded(cluster8, [FaultSpec("nic_degrade", 1, 0.5)])
        with pytest.raises(ValueError):
            derive_degraded(
                cluster8,
                [FaultSpec("rank_loss", r) for r in range(8)],
            )


class TestRemappedRoutingModel:
    def test_folds_rows_and_columns(self):
        base = SyntheticRoutingModel(seed=3)
        remap = RemappedRoutingModel(base, ((1, 2),))
        args = ("layer0", 4, 8, 64, 1.25)
        counts = remap.counts_for(*args)
        raw = base.counts_for(*args)
        assert counts[1].sum() == 0
        assert counts[2].sum() == raw[1].sum() + raw[2].sum()
        pair = remap.pair_bytes_for(*args, 2.0)
        assert pair[1, :].sum() == 0 and pair[:, 1].sum() == 0
        raw_pair = np.asarray(base.pair_bytes_for(*args, 2.0))
        assert pair.sum() == pytest.approx(raw_pair.sum())


class TestFaultInjector:
    @pytest.fixture(scope="class")
    def template(self, cluster8):
        return SimulationConfig(
            cluster=cluster8, routing=SyntheticRoutingModel(seed=11)
        )

    def test_clean_step_returns_template_object(self, template):
        sched = FaultSchedule(
            (FaultSpec("straggler", 1, severity=2.0, start_step=5),)
        )
        injector = FaultInjector(template, sched)
        assert injector.config_at(0) is template  # bit-identical for free

    def test_faulted_timeline_matches_degraded_config(
        self, template, graph8
    ):
        sched = FaultSchedule(
            (
                FaultSpec("straggler", 1, severity=2.0, start_step=2),
                FaultSpec("rank_loss", 5, start_step=2),
            )
        )
        injector = FaultInjector(template, sched)
        via_injector = injector.simulate(graph8.program, step=3)
        direct = simulate_cluster(
            graph8.program, config=injector.config_at(3)
        )
        for a, b in zip(via_injector.devices, direct.devices):
            assert a.intervals == b.intervals
        # the straggler slows the cluster down
        clean = injector.simulate(graph8.program, step=0)
        assert via_injector.makespan > clean.makespan

    def test_batch_path_is_bit_identical(self, template, graph8):
        sched = FaultSchedule.random(8, 8, seed=5, horizon=20)
        injector = FaultInjector(template, sched)
        steps = sorted(set(sched.transition_steps()))
        batch = injector.simulate_batch(graph8.program, steps)
        for idx, step in enumerate(steps):
            scalar = injector.simulate(graph8.program, step)
            batched = batch.timeline(idx)
            for a, b in zip(scalar.devices, batched.devices):
                assert a.intervals == b.intervals

    def test_ghost_rank_has_zero_comm_traffic(self, template, graph8):
        sched = FaultSchedule((FaultSpec("rank_loss", 3, start_step=0),))
        injector = FaultInjector(template, sched)
        cfg = injector.config_at(0)
        sig = cfg.routing.pair_bytes_for("probe", 8, 8, 64, 1.25, 2.0)
        assert sig[3, :].sum() == 0 and sig[:, 3].sum() == 0


class TestStragglerDetector:
    def test_transient_blip_is_absorbed(self):
        det = StragglerDetector(4, patience=3)
        base = [10.0, 10.0, 10.0, 10.0]
        blip = [10.0, 25.0, 10.0, 10.0]
        faults, _ = det.observe(0, base)
        assert not faults
        faults, _ = det.observe(1, blip)  # one bad step: not persistent
        assert not faults
        for step in range(2, 6):
            faults, _ = det.observe(step, base)
            assert not faults
        assert det.flagged == ()

    def test_persistent_straggler_flagged_with_accurate_estimate(self):
        det = StragglerDetector(4)
        for step in range(3):
            det.observe(step, [10.0, 10.0, 10.0, 10.0])
        events = []
        for step in range(3, 12):
            faults, _ = det.observe(step, [10.0, 10.0, 30.0, 10.0])
            events.extend(faults)
        assert [e.device for e in events] == [2]
        assert events[0].ratio == pytest.approx(3.0, rel=0.01)
        assert det.slowdowns() == {2: pytest.approx(3.0, rel=0.01)}

    def test_recovery_event_fires_after_heal(self):
        det = StragglerDetector(4)
        for step in range(8):
            det.observe(step, [10.0, 10.0, 30.0, 10.0])
        assert det.flagged == (2,)
        recoveries = []
        for step in range(8, 20):
            _, recs = det.observe(step, [10.0, 10.0, 10.0, 10.0])
            recoveries.extend(recs)
        assert [r.device for r in recoveries] == [2]
        assert det.flagged == ()

    def test_needs_at_least_two_devices(self):
        with pytest.raises(ValueError):
            StragglerDetector(1)


class TestFailureAwareTrainer:
    @pytest.fixture(scope="class")
    def setting(self, tiny_graph, small_cluster):
        return tiny_graph, small_cluster

    def _run(self, graph, cluster, *, detector, steps, schedule, **kw):
        from repro.train import ReoptimizingTrainer

        optimizer = LancetOptimizer(cluster)
        trainer = ReoptimizingTrainer(
            graph,
            optimizer,
            drift_threshold=10.0,
            fault_detector=detector,
            seed=0,
            **kw,
        )
        injector = FaultInjector(
            SimulationConfig(cluster=cluster, framework=optimizer.framework),
            schedule,
        )
        for step in range(steps):
            trainer.step()
            tl = injector.simulate(trainer.program, step)
            trainer.observe_device_times(tl.per_device_compute_ms())
        return trainer, injector

    def test_detects_replans_and_recovers(self, setting):
        graph, cluster = setting
        fault = FaultSpec("straggler", 1, severity=2.0, start_step=3,
                          end_step=10)
        trainer, injector = self._run(
            graph, cluster,
            detector=StragglerDetector(cluster.num_gpus),
            steps=18,
            schedule=FaultSchedule((fault,)),
        )
        assert [e.device for e in trainer.fault_events] == [1]
        assert trainer.fault_events[0].ratio == pytest.approx(2.0, rel=0.02)
        assert [e.device for e in trainer.recovery_events] == [1]
        triggers = [e.trigger for e in trainer.fault_replans]
        assert triggers == ["fault", "recovery"]
        # while degraded, planning targeted the degraded spec...
        assert trainer.fault_replans[0].cluster != cluster.name
        # ...and after recovery the nominal optimizer is back
        assert trainer.optimizer is trainer._nominal_optimizer

    def test_post_replan_within_10pct_of_oracle(self, setting):
        graph, cluster = setting
        fault = FaultSpec("straggler", 1, severity=2.0, start_step=2)
        trainer, injector = self._run(
            graph, cluster,
            detector=StragglerDetector(cluster.num_gpus),
            steps=10,
            schedule=FaultSchedule((fault,)),
        )
        degraded = derive_degraded(cluster, [fault])
        oracle_program, _ = LancetOptimizer(degraded.plan_spec).optimize(
            graph
        )
        cfg = injector.config_at(5)
        post = simulate_cluster(trainer.program, config=cfg).makespan
        oracle = simulate_cluster(oracle_program, config=cfg).makespan
        assert post <= oracle * 1.10

    def test_migration_pricing_blocks_worthless_swaps(self, setting):
        graph, cluster = setting
        fault = FaultSpec("straggler", 1, severity=2.0, start_step=2)
        trainer, _ = self._run(
            graph, cluster,
            detector=StragglerDetector(cluster.num_gpus),
            steps=8,
            schedule=FaultSchedule((fault,)),
            migration_horizon_steps=0,  # no future to amortize over
        )
        assert trainer.fault_replans  # the re-plan still ran...
        assert not any(e.migrated for e in trainer.fault_replans)
        # ...but the schedule was never swapped: zero amortization
        # horizon means no win can beat a positive migration cost
        assert all(e.migration_cost_ms > 0 for e in trainer.fault_replans)

    def test_fault_free_run_matches_plain_trainer(self, setting):
        from repro.train import ReoptimizingTrainer

        graph, cluster = setting
        plain = ReoptimizingTrainer(
            graph, LancetOptimizer(cluster), drift_threshold=10.0, seed=0
        )
        with_detector, _ = self._run(
            graph, cluster,
            detector=StragglerDetector(cluster.num_gpus),
            steps=4,
            schedule=FaultSchedule(()),
        )
        plain.run(4)
        assert not with_detector.fault_events
        assert not with_detector.fault_replans
        # bit-identical trajectory: the fault path never engaged
        assert with_detector.loss_curve() == plain.loss_curve()

    def test_observe_requires_detector(self, setting):
        from repro.train import ReoptimizingTrainer

        graph, cluster = setting
        trainer = ReoptimizingTrainer(
            graph, LancetOptimizer(cluster), drift_threshold=10.0, seed=0
        )
        with pytest.raises(ValueError, match="fault_detector"):
            trainer.observe_device_times([1.0, 1.0])


class TestFaultContextTelemetry:
    def test_fault_context_survives_summary_dict(self):
        from repro.core.lancet import LancetReport

        report = LancetReport()
        assert "fault_context" not in report.summary_dict()
        report.fault_context = {"trigger": "fault", "cluster": "x"}
        assert report.summary_dict()["fault_context"] == {
            "trigger": "fault", "cluster": "x",
        }

    def test_published_degraded_plan_records_fault_context(
        self, tiny_graph, small_cluster, tmp_path, monkeypatch
    ):
        from repro.api import PlanStore
        from repro.train import ReoptimizingTrainer
        import repro.runtime.simulate as rsim

        store = PlanStore(tmp_path / "plans")
        optimizer = LancetOptimizer(small_cluster)
        trainer = ReoptimizingTrainer(
            tiny_graph,
            optimizer,
            drift_threshold=10.0,
            fault_detector=StragglerDetector(small_cluster.num_gpus),
            seed=0,
            store=store,
        )
        # the symmetric 2-GPU case re-plans to an identical schedule
        # (win_ms == 0), which migration pricing rightly rejects; inflate
        # the *stale* schedule's simulated cost so the swap prices in and
        # the publication path runs
        real_simulate = rsim.simulate_program

        def inflate_stale(program, *a, **kw):
            timeline = real_simulate(program, *a, **kw)
            if program is trainer.program:
                return type(
                    "T", (), {"makespan": timeline.makespan * 10}
                )()
            return timeline

        monkeypatch.setattr(rsim, "simulate_program", inflate_stale)
        injector = FaultInjector(
            SimulationConfig(
                cluster=small_cluster, framework=optimizer.framework
            ),
            FaultSchedule((FaultSpec("straggler", 1, 2.0, start_step=0),)),
        )
        for step in range(8):
            trainer.step()
            tl = injector.simulate(trainer.program, step)
            trainer.observe_device_times(tl.per_device_compute_ms())
        replan = trainer.fault_replans[0]
        assert replan.migrated
        # observed signatures keep drifting after the publish, so look
        # the plan up by nearest signature bucket rather than exact key
        import math

        hit = store.nearest(
            trainer._ensure_fingerprint(),
            trainer.optimizer.cluster,
            trainer._policy(),
            trainer.optimizer.framework,
            dict(trainer._observed),
            max_distance=math.inf,
        )
        assert hit is not None
        ctx = hit[0].planner["fault_context"]
        assert ctx["trigger"] == "fault"
        assert ctx["cluster"] == trainer.optimizer.cluster.name
        assert ctx["slowdowns"]["1"] == pytest.approx(2.0, rel=0.02)
