#!/usr/bin/env python
"""Mathematical equivalence: optimized training is bit-identical.

The paper's central correctness claim (Sec. 1): all of Lancet's
transformations -- dW rescheduling, capacity-passing partitioned gating,
pipelined irregular all-to-alls -- preserve mathematical equivalence.

This example *trains* a small MoE model for several steps twice, once
with the original schedule and once with a forced 4-way partition
pipeline plus dW scheduling, executing real numpy tensors on the
simulated multi-device runtime, and shows the loss curves agree to the
last bit.

Run:  python examples/equivalence_check.py

See docs/TUTORIAL.md (step 3) for where this equivalence fits in the
end-to-end workflow.
"""

import numpy as np

from repro import ClusterSpec, GPT2MoEConfig, build_training_graph, validate
from repro.core import (
    CachingOpProfiler,
    CommCostModel,
    CostEstimator,
    WeightGradSchedulePass,
)
from repro.core.partition import RangePlan, apply_plan, infer_axes
from repro.runtime import COMPILED
from repro.train import Trainer


def force_partition(graph, parts=4):
    """Partition the first MoE layer's surroundings into a pipeline."""
    program = graph.program.clone()
    pos = program.instr_index()
    ml = graph.moe_layers[0]
    start = pos[ml.gate_matmul_uid] - 1  # include the MoE layernorm
    end = pos[ml.combine_uid] + 2  # include the residual add
    instrs = program.instructions[start:end]
    axes = infer_axes(instrs, program)
    assert axes is not None
    apply_plan(
        program,
        RangePlan(start=start, end=end, parts=parts, axes=axes,
                  predicted_ms=0.0, sequential_ms=0.0),
    )
    return program


def main() -> None:
    cfg = GPT2MoEConfig.tiny()
    graph = build_training_graph(cfg, batch=8, seq=8, num_gpus=2)

    # Lancet transformations: dW schedule + a forced 4-way pipeline
    cluster = ClusterSpec.for_gpus("a100", 2)
    costs = CostEstimator(
        CachingOpProfiler(gpu=cluster.gpu, framework=COMPILED),
        CommCostModel(cluster),
    )
    optimized = force_partition(graph, parts=4)
    optimized = WeightGradSchedulePass(costs).run(optimized)
    validate(optimized)
    print(f"original: {len(graph.program)} instructions; "
          f"optimized: {len(optimized)} instructions")

    steps = 5
    base = Trainer(graph, seed=7)
    opt = Trainer(graph, program=optimized, seed=7)
    print(f"\ntraining {steps} steps on {graph.num_gpus} simulated devices:")
    print(f"{'step':>4s}  {'baseline loss':>16s}  {'optimized loss':>16s}  equal")
    for s in range(steps):
        rb = base.step()
        ro = opt.step()
        same = np.array_equal(np.array(rb.losses), np.array(ro.losses))
        print(f"{s:4d}  {rb.mean_loss:16.12f}  {ro.mean_loss:16.12f}  {same}")
        assert same, "optimized schedule diverged -- equivalence violated!"

    print("\nloss trajectories are bit-identical: the optimized schedule is "
          "mathematically equivalent.")


if __name__ == "__main__":
    main()
