"""IR graph builders for Transformer sub-modules (attention, FFN, MoE)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Dim, DType, Program, TensorType
from .config import GPT2MoEConfig


@dataclass
class MoELayerInfo:
    """Bookkeeping for one MoE layer emitted into the program.

    Records the uids of the structural instructions so that passes and
    tests can locate the layer without pattern matching.
    """

    layer: int
    routing_uid: int
    dispatch_uid: int
    a2a_first_uid: int
    expert_uid: int
    a2a_second_uid: int
    combine_uid: int
    gate_matmul_uid: int
    expert_param_ids: tuple[int, ...]


@dataclass
class BuildContext:
    """Mutable state threaded through the model builder."""

    program: Program
    cfg: GPT2MoEConfig
    batch: int
    seq: int
    num_gpus: int
    dtype: DType = DType.F16
    moe_layers: list[MoELayerInfo] = field(default_factory=list)
    #: parameter value ids that are expert-local (not all-reduced)
    expert_params: set[int] = field(default_factory=set)

    @property
    def hidden_type(self) -> TensorType:
        return TensorType(
            (self.batch, self.seq, self.cfg.hidden),
            self.dtype,
            (Dim.BATCH, Dim.SEQ, Dim.HIDDEN),
        )

    def param(self, shape, dims, name: str, dtype: DType | None = None) -> int:
        t = TensorType(tuple(shape), dtype or self.dtype, tuple(dims))
        return self.program.add_param(t, name).id


def add_layernorm(ctx: BuildContext, x: int, name: str) -> int:
    """Emit layernorm(x) with fresh gamma/beta params; returns output id."""
    h = ctx.cfg.hidden
    gamma = ctx.param((h,), (Dim.HIDDEN,), f"{name}.gamma")
    beta = ctx.param((h,), (Dim.HIDDEN,), f"{name}.beta")
    (y,) = ctx.program.add("layernorm", [x, gamma, beta], out_names=[name])
    return y.id


def add_linear(
    ctx: BuildContext, x: int, out_features: int, out_dim: Dim, name: str
) -> int:
    """Emit ``bias_add(matmul(x, W), b)``; returns output id."""
    in_features = ctx.program.type_of(x).shape[-1]
    w = ctx.param((in_features, out_features), (Dim.HIDDEN, out_dim), f"{name}.w")
    b = ctx.param((out_features,), (out_dim,), f"{name}.b")
    (y,) = ctx.program.add("matmul", [x, w], out_names=[f"{name}.mm"])
    (y,) = ctx.program.add("bias_add", [y.id, b], out_names=[name])
    return y.id


def add_self_attention(ctx: BuildContext, x: int, layer: int) -> int:
    """Emit a full self-attention block (pre-LN, residual)."""
    cfg = ctx.cfg
    name = f"l{layer}.attn"
    ln = add_layernorm(ctx, x, f"{name}.ln")
    qkv = add_linear(ctx, ln, 3 * cfg.hidden, Dim.HIDDEN, f"{name}.qkv")
    q, k, v = ctx.program.add(
        "split3", [qkv], out_names=[f"{name}.q", f"{name}.k", f"{name}.v"]
    )
    (att,) = ctx.program.add(
        "attention",
        [q.id, k.id, v.id],
        attrs={"num_heads": cfg.num_heads, "causal": True},
        out_names=[f"{name}.ctx"],
    )
    proj = add_linear(ctx, att.id, cfg.hidden, Dim.HIDDEN, f"{name}.proj")
    (out,) = ctx.program.add("add", [x, proj], out_names=[f"{name}.res"])
    return out.id


def add_dense_ffn(ctx: BuildContext, x: int, layer: int) -> int:
    """Emit a dense feed-forward block (pre-LN, residual)."""
    cfg = ctx.cfg
    name = f"l{layer}.ffn"
    ln = add_layernorm(ctx, x, f"{name}.ln")
    h = add_linear(ctx, ln, cfg.ffn_hidden, Dim.FFN, f"{name}.fc1")
    (act,) = ctx.program.add("gelu", [h], out_names=[f"{name}.act"])
    y = add_linear(ctx, act.id, cfg.hidden, Dim.HIDDEN, f"{name}.fc2")
    (out,) = ctx.program.add("add", [x, y], out_names=[f"{name}.res"])
    return out.id


def add_moe_ffn(ctx: BuildContext, x: int, layer: int) -> int:
    """Emit an MoE feed-forward block: gate -> dispatch -> A2A -> experts
    -> A2A -> combine (paper Fig. 1), with residual."""
    cfg = ctx.cfg
    p = ctx.program
    name = f"l{layer}.moe"
    e = cfg.num_experts(ctx.num_gpus)
    el = cfg.experts_per_gpu
    c = cfg.capacity(ctx.batch, ctx.seq, ctx.num_gpus)
    hdim, f = cfg.hidden, cfg.ffn_hidden

    ln = add_layernorm(ctx, x, f"{name}.ln")

    # gate: trainable linear scoring + softmax + discrete routing
    wg = ctx.param((hdim, e), (Dim.HIDDEN, Dim.EXPERT), f"{name}.gate.w")
    (scores,) = p.add("matmul", [ln, wg], out_names=[f"{name}.scores"])
    gate_matmul_uid = p.instructions[-1].uid
    (probs,) = p.add("softmax", [scores.id], out_names=[f"{name}.probs"])
    (route,) = p.add(
        "routing",
        [probs.id],
        attrs={
            "gate_type": cfg.gate,
            "k": cfg.top_k,
            "num_experts": e,
            "capacity": c,
        },
        out_names=[f"{name}.route"],
    )
    routing_uid = p.instructions[-1].uid

    (buf,) = p.add(
        "moe_dispatch",
        [ln, route.id],
        attrs={"num_experts": e, "capacity": c},
        out_names=[f"{name}.disp"],
    )
    dispatch_uid = p.instructions[-1].uid

    # optional shared expert (PR-MoE / DeepSeek-MoE, paper Sec. 8): a dense
    # FFN that every token passes through.  Emitted after the dispatch so
    # the compute stream runs it while the all-to-all is in flight.
    shared_out = None
    if cfg.shared_expert:
        sf = cfg.shared_expert_mult * cfg.hidden
        sw1 = ctx.param((hdim, sf), (Dim.HIDDEN, Dim.FFN), f"{name}.shared.w1")
        sb1 = ctx.param((sf,), (Dim.FFN,), f"{name}.shared.b1")
        sw2 = ctx.param((sf, hdim), (Dim.FFN, Dim.HIDDEN), f"{name}.shared.w2")
        sb2 = ctx.param((hdim,), (Dim.HIDDEN,), f"{name}.shared.b2")
        (sh,) = p.add("matmul", [ln, sw1], out_names=[f"{name}.shared.mm1"])
        (sh,) = p.add("bias_add", [sh.id, sb1], out_names=[f"{name}.shared.h"])
        (sh,) = p.add("gelu", [sh.id], out_names=[f"{name}.shared.act"])
        (sh,) = p.add("matmul", [sh.id, sw2], out_names=[f"{name}.shared.mm2"])
        (sh,) = p.add("bias_add", [sh.id, sb2], out_names=[f"{name}.shared.out"])
        shared_out = sh.id

    (buf,) = p.add(
        "all_to_all",
        [buf.id],
        attrs={
            "irregular": True,
            "direction": "scatter",
            "tokens": ctx.batch * ctx.seq,
            "moe_layer": layer,
        },
        out_names=[f"{name}.a2a1"],
    )
    a2a1_uid = p.instructions[-1].uid

    w1 = ctx.param((el, hdim, f), (Dim.LOCAL_EXPERT, Dim.HIDDEN, Dim.FFN), f"{name}.w1")
    b1 = ctx.param((el, f), (Dim.LOCAL_EXPERT, Dim.FFN), f"{name}.b1")
    w2 = ctx.param((el, f, hdim), (Dim.LOCAL_EXPERT, Dim.FFN, Dim.HIDDEN), f"{name}.w2")
    b2 = ctx.param((el, hdim), (Dim.LOCAL_EXPERT, Dim.HIDDEN), f"{name}.b2")
    ctx.expert_params.update({w1, b1, w2, b2})
    (eout,) = p.add(
        "expert_ffn",
        [buf.id, w1, b1, w2, b2],
        attrs={"tokens": ctx.batch * ctx.seq},
        out_names=[f"{name}.experts"],
    )
    expert_uid = p.instructions[-1].uid

    (buf2,) = p.add(
        "all_to_all",
        [eout.id],
        attrs={
            "irregular": True,
            "direction": "gather",
            "tokens": ctx.batch * ctx.seq,
            "moe_layer": layer,
        },
        out_names=[f"{name}.a2a2"],
    )
    a2a2_uid = p.instructions[-1].uid

    (y,) = p.add(
        "moe_combine", [buf2.id, route.id, probs.id], out_names=[f"{name}.comb"]
    )
    combine_uid = p.instructions[-1].uid

    yid = y.id
    if shared_out is not None:
        (y,) = p.add("add", [yid, shared_out], out_names=[f"{name}.mix"])
        yid = y.id
    (out,) = p.add("add", [x, yid], out_names=[f"{name}.res"])

    ctx.moe_layers.append(
        MoELayerInfo(
            layer=layer,
            routing_uid=routing_uid,
            dispatch_uid=dispatch_uid,
            a2a_first_uid=a2a1_uid,
            expert_uid=expert_uid,
            a2a_second_uid=a2a2_uid,
            combine_uid=combine_uid,
            gate_matmul_uid=gate_matmul_uid,
            expert_param_ids=(w1, b1, w2, b2),
        )
    )
    return out.id


def add_transformer_block(ctx: BuildContext, x: int, layer: int) -> int:
    """Emit one Transformer block (attention + dense-or-MoE FFN)."""
    x = add_self_attention(ctx, x, layer)
    if ctx.cfg.is_moe_layer(layer):
        return add_moe_ffn(ctx, x, layer)
    return add_dense_ffn(ctx, x, layer)
