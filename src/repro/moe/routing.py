"""Token-to-expert routing algorithms.

Implements the gating methods discussed in the paper (Sec. 2.1, 2.3):

* ``switch`` -- top-1 routing (Fedus et al., 2022)
* ``topk``   -- generalized top-k routing (GShard)
* ``bpr``    -- Batch Prioritized Routing (Riquelme et al., 2021): tokens
  are sorted by importance score before capacity is assigned, so dropping
  depends on the *whole batch*
* ``random`` -- random expert assignment (THOR / stochastic experts)
* ``hash``   -- hash routing on token ids (Roller et al., 2021)
* ``expert_choice`` -- experts pick their top-C tokens (Zhou et al., 2022)

All methods enforce a per-expert *capacity* ``C``: at most ``C`` tokens per
expert (per device); excess tokens are dropped, under-full experts are
zero-padded (paper Sec. 2.1).

The critical property for Lancet's partition pass: ``switch``, ``topk``,
``random`` and ``hash`` are **batch-prefix stable** -- routing a prefix of
the batch, carrying per-expert used-capacity counts forward, gives exactly
the same assignment as routing the whole batch at once.  This is what the
paper's capacity-passing gate (Fig. 5c) exploits, implemented here as the
``capacity_counts`` in/out arguments.  ``bpr`` and ``expert_choice`` are
*not* prefix stable, which is why the paper only allows partitioning
*after* the MoE layer for them (Fig. 4c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RoutingInfo:
    """The result of routing a batch of tokens.

    One entry per *accepted* (token, expert) assignment; dropped
    assignments simply do not appear.

    Attributes
    ----------
    num_experts, capacity, k:
        Routing configuration this result was produced under.
    token_idx:
        Flattened token index of each accepted assignment.
    expert_idx:
        Target expert of each assignment.
    slot_idx:
        Capacity slot within the target expert (unique per expert, < C).
    num_tokens:
        Total number of tokens that were routed (before dropping).
    """

    num_experts: int
    capacity: int
    k: int
    token_idx: np.ndarray
    expert_idx: np.ndarray
    slot_idx: np.ndarray
    num_tokens: int

    def expert_counts(self) -> np.ndarray:
        """Tokens accepted per expert (length ``num_experts``)."""
        return np.bincount(self.expert_idx, minlength=self.num_experts)

    def dropped_tokens(self) -> np.ndarray:
        """Sorted indices of tokens with *no* accepted assignment."""
        assigned = np.zeros(self.num_tokens, dtype=bool)
        assigned[self.token_idx] = True
        return np.nonzero(~assigned)[0]

    def sorted_tuples(self) -> np.ndarray:
        """Canonical (token, expert, slot) triples for equality testing."""
        a = np.stack([self.token_idx, self.expert_idx, self.slot_idx], axis=1)
        order = np.lexsort((a[:, 2], a[:, 1], a[:, 0]))
        return a[order]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoutingInfo):
            return NotImplemented
        return (
            self.num_experts == other.num_experts
            and self.capacity == other.capacity
            and self.num_tokens == other.num_tokens
            and np.array_equal(self.sorted_tuples(), other.sorted_tuples())
        )


def topk_choices(probs: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k highest-probability experts per token ([T, k]).

    Choices are ordered by decreasing probability (rank 0 first), ties
    broken by lower expert index (deterministic).
    """
    t, e = probs.shape
    if k > e:
        raise ValueError(f"k={k} exceeds number of experts {e}")
    # argsort on (-prob, index): stable sort on negated probs gives
    # deterministic tie-breaking by expert index.
    order = np.argsort(-probs, axis=1, kind="stable")
    return order[:, :k].astype(np.int64)


def _fcfs_assign(
    token_order: np.ndarray,
    choice_expert: np.ndarray,
    num_experts: int,
    capacity: int,
    start_counts: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """First-come-first-served capacity assignment.

    Processes assignments in the order given by ``token_order`` (an
    ordering over the assignment list ``choice_expert``); each assignment
    claims the next free slot of its expert, and is dropped if the expert
    is already at capacity.

    Returns ``(kept_positions, expert_idx, slot_idx, new_counts)`` where
    ``kept_positions`` indexes into the original assignment list.
    """
    experts_in_order = choice_expert[token_order]
    base = np.zeros(num_experts, dtype=np.int64)
    if start_counts is not None:
        base = base + np.asarray(start_counts, dtype=np.int64)

    # rank of each assignment within its expert group, respecting order:
    # stable-sort the ordered experts, rank = position - group start.
    n = experts_in_order.shape[0]
    sort_by_expert = np.argsort(experts_in_order, kind="stable")
    sorted_experts = experts_in_order[sort_by_expert]
    group_start = np.zeros(n, dtype=np.int64)
    if n > 0:
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        new_group[1:] = sorted_experts[1:] != sorted_experts[:-1]
        starts = np.nonzero(new_group)[0]
        group_start = starts[np.cumsum(new_group) - 1]
    rank_sorted = np.arange(n) - group_start
    rank = np.empty(n, dtype=np.int64)
    rank[sort_by_expert] = rank_sorted

    slots = base[experts_in_order] + rank
    keep = slots < capacity

    kept_positions = token_order[keep]
    expert_idx = experts_in_order[keep]
    slot_idx = slots[keep]
    new_counts = base + np.bincount(
        experts_in_order[keep], minlength=num_experts
    )
    new_counts = np.minimum(new_counts, capacity)
    return kept_positions, expert_idx, slot_idx, new_counts


def _assignment_list(
    choices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten [T, k] choices into an assignment list ordered token-major.

    Each token claims capacity for all of its k choices before the next
    token does.  (GShard orders rank-major -- all first choices before any
    second choice -- but rank-major assignment is *not* batch-prefix
    stable for k > 1, so Lancet's capacity-passing partitioned gate
    requires the token-major order used here.)  Returns (token, expert,
    order) arrays where ``order`` processes the flat list token-major.
    """
    t, k = choices.shape
    token = np.repeat(np.arange(t), k)
    expert = choices.reshape(-1)
    order = np.arange(t * k)
    return token, expert, order


def route_switch(
    probs: np.ndarray,
    capacity: int,
    k: int = 1,
    capacity_counts: np.ndarray | None = None,
) -> tuple[RoutingInfo, np.ndarray]:
    """Switch / top-k routing with FCFS capacity in token order.

    Batch-prefix stable: pass ``capacity_counts`` from a previous chunk to
    continue routing exactly where it left off (paper Fig. 5c).
    """
    t, e = probs.shape
    choices = topk_choices(probs, k)
    token, expert, order = _assignment_list(choices)
    kept, expert_idx, slot_idx, counts = _fcfs_assign(
        order, expert, e, capacity, capacity_counts
    )
    info = RoutingInfo(e, capacity, k, token[kept], expert_idx, slot_idx, t)
    return info, counts


def route_bpr(
    probs: np.ndarray,
    capacity: int,
    k: int = 1,
) -> tuple[RoutingInfo, np.ndarray]:
    """Batch Prioritized Routing: importance-sorted capacity assignment.

    Tokens are sorted by importance (sum of their top-k gating probs,
    descending) *across the whole batch* before slots are claimed, so
    low-importance tokens are dropped first.  Not batch-prefix stable.
    """
    t, e = probs.shape
    choices = topk_choices(probs, k)
    importance = np.take_along_axis(probs, choices, axis=1).sum(axis=1)
    token_priority = np.argsort(-importance, kind="stable")
    prio_rank = np.empty(t, dtype=np.int64)
    prio_rank[token_priority] = np.arange(t)

    token, expert, _ = _assignment_list(choices)
    # order assignments by (token priority, rank): the most important
    # token claims all of its k choices first.
    rank_of = np.tile(np.arange(k), t)
    keys = prio_rank[token] * k + rank_of
    order = np.argsort(keys, kind="stable")
    kept, expert_idx, slot_idx, counts = _fcfs_assign(
        order, expert, e, capacity, None
    )
    info = RoutingInfo(e, capacity, k, token[kept], expert_idx, slot_idx, t)
    return info, counts


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64-style integer hash (vectorized, deterministic)."""
    x = (x + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def route_random(
    probs: np.ndarray,
    capacity: int,
    k: int = 1,
    seed: int = 0,
    token_offset: int = 0,
    capacity_counts: np.ndarray | None = None,
) -> tuple[RoutingInfo, np.ndarray]:
    """Random expert assignment (THOR-style).

    The choice for each token is a counter-based hash of its *global*
    token index, so routing is batch-prefix stable by construction: a
    chunk starting at ``token_offset`` draws exactly the choices the full
    batch would have drawn for those tokens.
    """
    t, e = probs.shape
    base = np.arange(token_offset, token_offset + t, dtype=np.uint64)
    choices = np.empty((t, k), dtype=np.int64)
    taken = np.zeros((t, e), dtype=bool)
    for r in range(k):  # draw without replacement per token
        h = _mix64(base * np.uint64(k) + np.uint64(r) + _mix64(
            np.full(t, np.uint64(seed))
        ))
        pick = (h % np.uint64(e)).astype(np.int64)
        if r > 0:  # linear-probe past already-chosen experts
            for _ in range(e):
                clash = taken[np.arange(t), pick]
                if not clash.any():
                    break
                pick[clash] = (pick[clash] + 1) % e
        taken[np.arange(t), pick] = True
        choices[:, r] = pick
    token, expert, order = _assignment_list(choices)
    kept, expert_idx, slot_idx, counts = _fcfs_assign(
        order, expert, e, capacity, capacity_counts
    )
    info = RoutingInfo(e, capacity, k, token[kept], expert_idx, slot_idx, t)
    return info, counts


def route_hash(
    token_ids: np.ndarray,
    num_experts: int,
    capacity: int,
    capacity_counts: np.ndarray | None = None,
) -> tuple[RoutingInfo, np.ndarray]:
    """Hash routing: expert = hash(token id) mod E.  Prefix stable."""
    flat = np.asarray(token_ids).reshape(-1).astype(np.int64)
    t = flat.shape[0]
    # Knuth multiplicative hash for a deterministic, well-mixed bucket.
    expert = ((flat * 2654435761) % (2**32)) % num_experts
    order = np.arange(t)
    kept, expert_idx, slot_idx, counts = _fcfs_assign(
        order, expert, num_experts, capacity, capacity_counts
    )
    info = RoutingInfo(
        num_experts, capacity, 1, order[kept], expert_idx, slot_idx, t
    )
    return info, counts


def route_expert_choice(
    probs: np.ndarray,
    capacity: int,
) -> tuple[RoutingInfo, np.ndarray]:
    """Expert-choice routing: each expert picks its top-C tokens.

    Needs the full batch's scores (experts compare all tokens), so it is
    not batch-prefix stable.
    """
    t, e = probs.shape
    c = min(capacity, t)
    # top-C tokens per expert column
    order = np.argsort(-probs, axis=0, kind="stable")[:c]  # [c, E]
    token_idx = order.T.reshape(-1)  # expert-major
    expert_idx = np.repeat(np.arange(e), c)
    slot_idx = np.tile(np.arange(c), e)
    counts = np.full(e, c, dtype=np.int64)
    info = RoutingInfo(e, capacity, 1, token_idx, expert_idx, slot_idx, t)
    return info, counts


def route_tokens(
    probs: np.ndarray,
    gate_type: str,
    capacity: int,
    k: int = 1,
    token_ids: np.ndarray | None = None,
    seed: int = 0,
    token_offset: int = 0,
    capacity_counts: np.ndarray | None = None,
) -> tuple[RoutingInfo, np.ndarray]:
    """Dispatch to the routing algorithm named ``gate_type``.

    Parameters
    ----------
    probs:
        Gate probabilities, shape [tokens, experts].
    seed / token_offset:
        Stream parameters for stochastic gates; ``token_offset`` is the
        global index of the first token (so batch chunks reproduce the
        full batch's random choices).
    capacity_counts:
        Per-expert used capacity carried from a previous batch chunk (the
        capacity-passing partitioned gate); only legal for prefix-stable
        gates.

    Returns
    -------
    (routing info, updated per-expert counts)
    """
    if gate_type == "switch":
        return route_switch(probs, capacity, k=1, capacity_counts=capacity_counts)
    if gate_type == "topk":
        return route_switch(probs, capacity, k=k, capacity_counts=capacity_counts)
    if gate_type == "bpr":
        if capacity_counts is not None:
            raise ValueError("BPR gating is not batch-prefix stable")
        return route_bpr(probs, capacity, k=k)
    if gate_type == "random":
        return route_random(
            probs,
            capacity,
            k=k,
            seed=seed,
            token_offset=token_offset,
            capacity_counts=capacity_counts,
        )
    if gate_type == "hash":
        if token_ids is None:
            raise ValueError("hash gating requires token_ids")
        return route_hash(
            token_ids, probs.shape[1], capacity, capacity_counts=capacity_counts
        )
    if gate_type == "expert_choice":
        if capacity_counts is not None:
            raise ValueError("expert-choice gating is not batch-prefix stable")
        return route_expert_choice(probs, capacity)
    raise ValueError(f"unknown gate type {gate_type!r}")
