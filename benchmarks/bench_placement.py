"""Placement-optimizer gate: differential agreement + hot-expert wins.

Runs the three seeded placement drills (``repro.bench.figures
.placement``) and asserts the documented quality contracts directly, on
top of the baseline-diffed regression metrics:

1. **Differential agreement** -- on every exhaustively enumerable
   config, the greedy optimizer's bottleneck stays within the
   documented :data:`~repro.placement.GREEDY_BOUND` of brute force:
   zero mismatches beyond the bound, ever.
2. **Hot-expert wins** -- on every multi-node grid point the optimizer
   beats the identity layout by at least the documented target
   (mean over seeds), the headline "placement flattens the NIC
   bottleneck" claim.
3. **Priced migration replay** -- over the recorded drift trace, the
   adaptive trajectory (weight-transfer costs included) performs at
   least one migration and lands strictly cheaper than staying on the
   identity layout.
"""

from conftest import run_figure

from repro.bench.figures import placement
from repro.placement import GREEDY_BOUND


def test_placement(benchmark):
    result = run_figure(benchmark, placement.run)
    differential = result.notes["differential"]
    hot = result.notes["hot_grid"]
    replay = result.notes["replay"]

    # contract 1: the greedy bound is a contract, not a target
    assert differential["mismatches_beyond_bound"] == 0
    assert differential["runs"] >= 20
    assert differential["worst_ratio"] <= GREEDY_BOUND + 1e-9
    # most enumerable configs should agree exactly, not just within bound
    assert differential["exact_matches"] >= differential["runs"] // 2

    # contract 2: every grid point clears the improvement target
    assert hot["min_improvement"] >= hot["target"], (
        f"worst grid point improved only "
        f"{hot['min_improvement'] * 100:.1f}% "
        f"(target {hot['target'] * 100:.0f}%)"
    )
    assert all(p["mean_improvement"] > 0 for p in hot["points"])

    # contract 3: priced migrations pay for themselves on the trace
    assert replay["migrations"] >= 1
    assert replay["total_adaptive_ms"] < replay["total_identity_ms"]
    assert replay["improvement"] > 0.05
    # the pricing rule is conservative: decisions were considered but
    # only profitable ones executed
    assert replay["decisions"] >= replay["migrations"]
