#!/usr/bin/env python3
"""Compare BENCH_*.json records against checked-in baselines.

Every figure runner may publish ``notes.regression_metrics``: a flat
mapping of metric name -> value where **lower is better** (simulated
milliseconds, so values are deterministic across machines).  A run
regresses when any metric exceeds its baseline by more than the
tolerance (default 20%).

Usage:
    python benchmarks/check_regression.py \
        benchmarks/results/BENCH_skew_sweep.json \
        [more results...] \
        [--baseline-dir benchmarks/baselines] [--tolerance 0.20]

Exit status: 0 = within tolerance, 1 = regression (or missing baseline
metric), 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_BASELINE_DIR = pathlib.Path(__file__).parent / "baselines"


def load_metrics(path: pathlib.Path) -> dict[str, float]:
    record = json.loads(path.read_text())
    metrics = record.get("notes", {}).get("regression_metrics", {})
    return {str(k): float(v) for k, v in metrics.items()}


def compare(
    result_path: pathlib.Path,
    baseline_path: pathlib.Path,
    tolerance: float,
) -> list[str]:
    """Returns a list of human-readable failures (empty = pass)."""
    current = load_metrics(result_path)
    baseline = load_metrics(baseline_path)
    failures = []
    for name, base in sorted(baseline.items()):
        now = current.get(name)
        if now is None:
            failures.append(f"{result_path.name}: metric {name!r} disappeared")
            continue
        limit = base * (1.0 + tolerance)
        status = "OK" if now <= limit else "REGRESSION"
        print(
            f"  {name}: {now:.4f} vs baseline {base:.4f} "
            f"(limit {limit:.4f}) {status}"
        )
        if now > limit:
            failures.append(
                f"{result_path.name}: {name} regressed "
                f"{now:.4f} > {base:.4f} * {1 + tolerance:.2f}"
            )
    new_metrics = sorted(set(current) - set(baseline))
    if new_metrics:
        print(f"  (not in baseline, informational: {new_metrics})")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="+", type=pathlib.Path)
    parser.add_argument(
        "--baseline-dir", type=pathlib.Path, default=DEFAULT_BASELINE_DIR
    )
    parser.add_argument("--tolerance", type=float, default=0.20)
    args = parser.parse_args(argv)

    failures: list[str] = []
    for result_path in args.results:
        if not result_path.exists():
            print(f"missing result file: {result_path}", file=sys.stderr)
            return 2
        baseline_path = args.baseline_dir / result_path.name
        if not baseline_path.exists():
            print(f"no baseline for {result_path.name}; skipping comparison")
            continue
        print(f"{result_path.name}:")
        failures.extend(compare(result_path, baseline_path, args.tolerance))

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall benchmark metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
