"""Partition rules: the constraint functions ``F_Z`` of paper Sec. 5.2.

For every operator we enumerate the valid combinations of input/output
partition axes -- the boolean constraint the paper's axis inferencer
feeds to a constraint solver.  Conventions:

* ``NOT_PARTITIONED`` (-1): the operand is replicated to every chunk
  (weights, biases).
* an integer axis: the operand is split along that dimension.
* ``AXIS_IRREGULAR`` (A_irr): the irregular partition of MoE dispatch
  buffers and routing metadata (paper Fig. 5c) -- chunks keep the full
  [E, C, H] shape but occupy disjoint, variable-sized capacity slots.

Rules only list *partitioned* execution: an instruction whose outputs
would all stay unpartitioned has no business inside a pipeline range, so
the all-NP combination is deliberately absent.  Infeasibility (an empty
rule list, e.g. Batch Prioritized Routing's gate) is how gating methods
restrict the partition range (paper Sec. 2.3): the DP simply cannot
choose a range containing such an op.

MoE buffer ops accept the *capacity* axis only when the range covers
nothing but the all-to-all / expert pipeline (``ctx.moe_only``,
Tutel-style partitioning); otherwise they require ``A_irr``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...ir import AXIS_IRREGULAR as IRR
from ...ir import NOT_PARTITIONED as NP
from ...ir import Instruction, TensorType
from ...models.config import BATCH_PREFIX_STABLE_GATES

#: one rule: (axes of inputs, axes of outputs)
AxisRule = tuple[tuple[int, ...], tuple[int, ...]]


@dataclass(frozen=True)
class RuleContext:
    """Context that changes which rules apply for a candidate range."""

    #: True when the range covers only all-to-all and expert computation
    #: (then capacity-axis partitioning, as in Tutel, is allowed).
    moe_only: bool = False


def _batch_like_axes(t: TensorType) -> list[int]:
    """Axes a plain activation may be split along: any leading dim
    (everything except the trailing feature dim)."""
    return list(range(max(t.rank - 1, 0)))


def rules_for(
    instr: Instruction,
    in_types: list[TensorType],
    out_types: list[TensorType],
    ctx: RuleContext,
) -> list[AxisRule]:
    """Enumerate valid (input axes, output axes) combinations for ``instr``."""
    op = instr.op
    fn = _RULES.get(op)
    if fn is None:
        return []  # unknown / unpartitionable op: infeasible inside a range
    return fn(instr, in_types, out_types, ctx)


_RULES: dict = {}


def _rule(op: str):
    def deco(fn):
        _RULES[op] = fn
        return fn

    return deco


@_rule("matmul")
def _r_matmul(instr, ins, outs, ctx):
    x, _w = ins
    # row-split of the activation along any leading dim (weight replicated)
    rules: list[AxisRule] = [((a, NP), (a,)) for a in range(x.rank - 1)]
    # column-split of the weight partitions the output feature dim
    rules.append(((NP, 1), (outs[0].rank - 1,)))
    return rules


@_rule("matmul_dx")
def _r_matmul_dx(instr, ins, outs, ctx):
    dy, _w = ins
    return [((a, NP), (a,)) for a in range(dy.rank - 1)]


@_rule("bias_add")
def _r_bias_add(instr, ins, outs, ctx):
    x, _b = ins
    rules = [((a, NP), (a,)) for a in range(x.rank - 1)]
    rules.append(((x.rank - 1, 0), (x.rank - 1,)))
    return rules


def _r_elementwise(instr, ins, outs, ctx):
    x = ins[0]
    return [((a,) * len(ins), (a,) * len(outs)) for a in range(x.rank)]


def _r_rowwise(instr, ins, outs, ctx):
    """Ops that reduce over the trailing dim: split leading dims only."""
    x = ins[0]
    return [((a,) * len(ins), (a,) * len(outs)) for a in range(x.rank - 1)]


_RULES["add"] = _r_elementwise
_RULES["scale"] = _r_elementwise
_RULES["gelu"] = _r_elementwise
_RULES["relu"] = _r_elementwise
_RULES["softmax"] = _r_rowwise


@_rule("layernorm")
def _r_layernorm(instr, ins, outs, ctx):
    x = ins[0]
    return [((a, NP, NP), (a,)) for a in range(x.rank - 1)]


@_rule("split3")
def _r_split3(instr, ins, outs, ctx):
    x = ins[0]
    return [((a,), (a, a, a)) for a in range(x.rank - 1)]


@_rule("attention")
def _r_attention(instr, ins, outs, ctx):
    # causal attention mixes tokens within a sequence: batch split only
    return [((0, 0, 0), (0,))]


@_rule("embedding")
def _r_embedding(instr, ins, outs, ctx):
    ids = ins[1]
    return [((NP, a), (a,)) for a in range(ids.rank)]


@_rule("pos_embedding")
def _r_pos_embedding(instr, ins, outs, ctx):
    return [((0, NP), (0,)), ((1, 0), (1,))]


@_rule("routing")
def _r_routing(instr, ins, outs, ctx):
    gate = instr.attrs.get("gate_type", "switch")
    if gate not in BATCH_PREFIX_STABLE_GATES:
        # batch-dependent gating (BPR, expert-choice): the gate itself can
        # never be partitioned (paper Sec. 2.3 / Fig. 4c)
        return []
    # batch-partitioned probabilities -> irregularly partitioned route,
    # realized by the capacity-passing routing_partial operator
    return [((0,), (IRR,))]


@_rule("moe_dispatch")
def _r_moe_dispatch(instr, ins, outs, ctx):
    return [((0, IRR), (IRR,))]


@_rule("all_to_all")
def _r_all_to_all(instr, ins, outs, ctx):
    rules: list[AxisRule] = [((IRR,), (IRR,))]
    if ctx.moe_only:
        rules.append(((1,), (1,)))  # capacity axis (Tutel-style)
    return rules


@_rule("expert_ffn")
def _r_expert_ffn(instr, ins, outs, ctx):
    rules: list[AxisRule] = [((IRR, NP, NP, NP, NP), (IRR,))]
    if ctx.moe_only:
        rules.append(((1, NP, NP, NP, NP), (1,)))
    return rules


@_rule("moe_combine")
def _r_moe_combine(instr, ins, outs, ctx):
    # gather restores token order: accepts only irregular buffers and
    # produces batch-partitioned output (paper Fig. 8a)
    return [((IRR, IRR, 0), (0,))]


def entry_domain(t: TensorType, is_route: bool) -> set[int]:
    """Axes at which a value *entering* a range can be split.

    Plain tensors can be sliced along any real axis (split_chunk) or
    passed whole (NP).  Routing metadata can additionally be sliced into
    irregular chunks by token range (route_slice).  Raw buffers cannot be
    split irregularly from outside -- A_irr can only be *produced* by the
    gate/dispatch chain.
    """
    dom = {NP}
    dom.update(range(t.rank))
    if is_route:
        dom.add(IRR)
    return dom
