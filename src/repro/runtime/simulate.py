"""Timed execution of an IR program on the simulated cluster.

This is the "hardware" of the reproduction: a discrete-event simulation
with the standard two-stream GPU model (one compute stream, one NCCL
communication stream).  Instructions issue **in program order** onto
their stream; an instruction starts when its stream is free *and* all its
data dependencies have completed -- exactly the semantics the paper's
pipeline scheduler assumes (Sec. 5.3: "start time = max over (i) end of
dependencies and (ii) end of the previous instruction of the same type").

Because execution is SPMD-symmetric (all devices run the same program on
equal-sized data, synchronized by collectives), one representative device
timeline suffices; collective durations come from the cluster-wide
network model, including realized irregular all-to-all sizes drawn from a
routing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import math

from ..ir import Dim, InstrKind, Instruction, Program, Stream, TensorType, get_op
from .cluster import ClusterSpec
from .device import COMPILED, FrameworkProfile
from .routing_model import SyntheticRoutingModel, UniformRoutingModel
from .timeline import Interval, Timeline

#: Ops whose kernel time is scaled by the framework's dispatch multiplier
#: (DeepSpeed's slow dispatch vs Tutel's fast kernels, paper Sec. 7).
DISPATCH_OPS = {
    "moe_dispatch",
    "moe_combine",
    "moe_dispatch_dx",
    "moe_combine_dx",
    "moe_combine_dprobs",
    "routing",
    "routing_partial",
}


def _scale_capacity(
    t: TensorType, parts: int, occupancy: float = 1.0
) -> TensorType:
    """Shrink the capacity (or token) dimension of an irregular chunk,
    optionally also by the realized occupancy (block-sparse kernels)."""
    if t.has_dim(Dim.CAPACITY):
        i = t.dim_index(Dim.CAPACITY)
    elif t.has_dim(Dim.TOKENS):
        i = t.dim_index(Dim.TOKENS)
    else:
        return t
    shape = list(t.shape)
    shape[i] = max(1, math.ceil(shape[i] * occupancy / parts))
    return t.with_shape(tuple(shape))


#: expert computation ops whose padded slots a block-sparse kernel skips
EXPERT_BUF_OPS = frozenset({"expert_ffn", "expert_ffn_dx", "expert_ffn_dw"})


@dataclass
class SimulationConfig:
    """Everything that determines ground-truth op durations."""

    cluster: ClusterSpec
    framework: FrameworkProfile = COMPILED
    #: True = all-to-alls move the full padded buffer (baseline behaviour);
    #: False = irregular all-to-all moving only realized token counts
    #: (Lancet's two-phase protocol, paper Fig. 10).
    padded_a2a: bool = True
    #: MegaBlocks-style block-sparse expert kernels (paper Sec. 8 future
    #: work): expert computation skips padded capacity slots, so its cost
    #: scales with realized tokens instead of E*C.
    block_sparse_experts: bool = False
    routing: SyntheticRoutingModel | UniformRoutingModel = field(
        default_factory=lambda: SyntheticRoutingModel(seed=0)
    )


class GroundTruthCost:
    """Ground-truth duration of each instruction under a config."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self._compute_cache: dict = {}

    # -- compute ops -------------------------------------------------------------

    def _compute_ms(self, instr: Instruction, program: Program) -> float:
        spec = get_op(instr.op)
        fw = self.config.framework
        gpu = self.config.cluster.gpu
        in_types = [program.type_of(v) for v in instr.inputs]
        out_types = [program.type_of(v) for v in instr.outputs]
        irr_parts = int(instr.attrs.get("irr_parts", 1))
        occupancy = 1.0
        if (
            self.config.block_sparse_experts
            and instr.op in EXPERT_BUF_OPS
            and "tokens" in instr.attrs
        ):
            buf = in_types[0]
            slots = buf.shape[0] * buf.shape[1]
            occupancy = min(1.0, instr.attrs["tokens"] / slots)
        if irr_parts > 1 or occupancy < 1.0:
            # irregular chunk and/or block-sparse kernel: only realized
            # capacity slots are computed (grouped GEMM over real rows)
            in_types = [
                _scale_capacity(t, irr_parts, occupancy) for t in in_types
            ]
            out_types = [
                _scale_capacity(t, irr_parts, occupancy) for t in out_types
            ]
        key = (
            instr.op,
            tuple(t.shape for t in in_types),
            fw.name,
        )
        hit = self._compute_cache.get(key)
        if hit is not None:
            return hit
        flops = spec.flops(in_types, out_types, instr.attrs)
        nbytes = spec.membytes(in_types, out_types, instr.attrs)
        t = gpu.op_time_ms(flops, nbytes) * fw.compute_mult
        if instr.op in DISPATCH_OPS:
            t *= fw.dispatch_mult
        t += fw.launch_ms(spec.kernels)
        self._compute_cache[key] = t
        return t

    # -- communication ops ----------------------------------------------------------

    def _a2a_ms(self, instr: Instruction, program: Program) -> float:
        cluster = self.config.cluster
        buf_t = program.type_of(instr.inputs[0])
        if self.config.padded_a2a or not instr.attrs.get("irregular", False):
            return cluster.a2a_time_ms(float(buf_t.nbytes))

        # irregular: realized pair sizes from the routing model
        e, c, h = buf_t.shape
        g = cluster.num_gpus
        tokens = int(instr.attrs.get("tokens", e * c))
        layer_key = instr.attrs.get("moe_layer", instr.origin or instr.uid)
        fraction = 1.0
        if instr.partition is not None:
            fraction = 1.0 / instr.partition[1]
        pair = self.config.routing.pair_bytes_for(
            layer_key,
            g,
            e,
            tokens,
            c if fraction == 1.0 else int(np.ceil(c)),
            bytes_per_token=h * buf_t.dtype.nbytes,
            fraction=fraction,
        )
        return cluster.a2a_time_ms_irregular(pair)

    def duration_ms(self, instr: Instruction, program: Program) -> float:
        """Ground-truth duration of one instruction in milliseconds."""
        if instr.op == "all_to_all":
            return self._a2a_ms(instr, program)
        if instr.op == "allreduce":
            nbytes = float(program.type_of(instr.inputs[0]).nbytes)
            return self.config.cluster.allreduce_time_ms(nbytes)
        return self._compute_ms(instr, program)


def simulate_program(
    program: Program,
    cost: GroundTruthCost | None = None,
    config: SimulationConfig | None = None,
    duration_fn=None,
) -> Timeline:
    """Simulate one training iteration; returns the device timeline.

    Provide either a :class:`GroundTruthCost` / :class:`SimulationConfig`
    pair, or a raw ``duration_fn(instr, program) -> ms`` (used by Lancet's
    internal pipeline scheduler with *predicted* costs).
    """
    if duration_fn is None:
        if cost is None:
            if config is None:
                raise ValueError("need cost, config, or duration_fn")
            cost = GroundTruthCost(config)
        duration_fn = cost.duration_ms

    value_ready: dict[int, float] = {}
    stream_free = {Stream.COMPUTE: 0.0, Stream.COMM: 0.0}
    intervals: list[Interval] = []

    for instr in program.instructions:
        stream = Stream.COMM if instr.is_comm else Stream.COMPUTE
        dep_ready = 0.0
        for v in instr.inputs:
            t = value_ready.get(v, 0.0)
            if t > dep_ready:
                dep_ready = t
        start = max(stream_free[stream], dep_ready)
        dur = duration_fn(instr, program)
        end = start + dur
        stream_free[stream] = end
        for o in instr.outputs:
            value_ready[o] = end
        intervals.append(
            Interval(
                uid=instr.uid,
                op=instr.op,
                kind=instr.kind.value,
                stream=stream,
                start=start,
                end=end,
            )
        )

    return Timeline(intervals)


def iteration_time_ms(
    program: Program, config: SimulationConfig
) -> float:
    """Convenience: simulated makespan of one iteration."""
    return simulate_program(program, config=config).makespan
