"""Grouped expert feed-forward computation and its exact gradients.

Each device hosts ``El`` experts; after the first all-to-all its buffer
holds, per local expert, the tokens gathered from every device.  The
expert FFN is the standard two-matmul GELU block, applied independently
per expert via batched einsums (no Python loop over tokens).
"""

from __future__ import annotations

import numpy as np


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as in GPT-2)."""
    c = np.sqrt(2.0 / np.pi).astype(x.dtype) if hasattr(x, "dtype") else np.sqrt(2 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def gelu_grad(x: np.ndarray) -> np.ndarray:
    """d gelu(x) / dx for the tanh approximation."""
    c = np.sqrt(2.0 / np.pi)
    u = c * (x + 0.044715 * x**3)
    t = np.tanh(u)
    du = c * (1.0 + 3 * 0.044715 * x**2)
    return 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * du


def _occupied_mask(buf: np.ndarray) -> np.ndarray:
    """True for capacity slots that hold a real token.

    Empty slots are exactly zero (the dispatch zero-pads); irregular
    expert kernels skip them entirely (paper Sec. 8: no computation on
    padding), so their FFN output is defined as zero.  This also makes
    partitioned execution composable: chunk buffers occupy disjoint slots
    and can be reconstructed by summation.
    """
    return np.any(buf != 0.0, axis=-1, keepdims=True)


def expert_ffn(
    buf: np.ndarray,
    w1: np.ndarray,
    b1: np.ndarray,
    w2: np.ndarray,
    b2: np.ndarray,
) -> np.ndarray:
    """Apply each local expert's FFN to its token group.

    ``buf`` has shape [E, C, H] where the leading axis is local-expert
    major (``E = El * G``; rows ``le*G .. le*G+G-1`` belong to local
    expert ``le``).  Weights: w1 [El, H, F], b1 [El, F], w2 [El, F, H],
    b2 [El, H].  Empty (padded) slots produce zeros -- see
    :func:`_occupied_mask`.
    """
    e, c, h = buf.shape
    el = w1.shape[0]
    if e % el != 0:
        raise ValueError(f"buffer expert dim {e} not divisible by El={el}")
    mask = _occupied_mask(buf)
    x = buf.reshape(el, -1, h)  # [El, G*C, H]
    z = np.einsum("eth,ehf->etf", x, w1) + b1[:, None, :]
    a = gelu(z)
    y = np.einsum("etf,efh->eth", a, w2) + b2[:, None, :]
    return y.reshape(e, c, h) * mask


def expert_ffn_backward(
    dout: np.ndarray,
    buf: np.ndarray,
    w1: np.ndarray,
    b1: np.ndarray,
    w2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Full backward of :func:`expert_ffn`.

    Returns ``(dbuf, dw1, db1, dw2, db2)``; activations are recomputed
    from the saved input (standard memory/compute trade).
    """
    e, c, h = buf.shape
    el = w1.shape[0]
    mask = _occupied_mask(buf).reshape(el, -1, 1)
    x = buf.reshape(el, -1, h)
    dy = dout.reshape(el, -1, h) * mask  # padded slots carry no gradient
    z = np.einsum("eth,ehf->etf", x, w1) + b1[:, None, :]
    a = gelu(z) * mask

    da = np.einsum("eth,efh->etf", dy, w2)
    dz = da * gelu_grad(z)

    dw2 = np.einsum("etf,eth->efh", a, dy)
    db2 = dy.sum(axis=1)
    dw1 = np.einsum("eth,etf->ehf", x, dz)
    db1 = dz.sum(axis=1)
    dx = np.einsum("etf,ehf->eth", dz, w1)
    return dx.reshape(e, c, h), dw1, db1, dw2, db2


def expert_ffn_dx(
    dout: np.ndarray,
    buf: np.ndarray,
    w1: np.ndarray,
    b1: np.ndarray,
    w2: np.ndarray,
) -> np.ndarray:
    """Activation gradient only (the dX op in the IR)."""
    dx, _, _, _, _ = expert_ffn_backward(dout, buf, w1, b1, w2)
    return dx


def expert_ffn_dw(
    dout: np.ndarray,
    buf: np.ndarray,
    w1: np.ndarray,
    b1: np.ndarray,
    w2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Weight gradients only (the dW op in the IR)."""
    _, dw1, db1, dw2, db2 = expert_ffn_backward(dout, buf, w1, b1, w2)
    return dw1, db1, dw2, db2
