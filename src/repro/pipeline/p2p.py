"""Point-to-point activation cost model for stage boundaries.

Layered on the same alpha-beta conventions as the cluster's collective
model (:class:`~repro.runtime.ClusterSpec`): alphas in microseconds,
bandwidths in GB/s (1e9 bytes per second), times in milliseconds.

Each device of stage ``s`` sends its activation shard to the
corresponding rank of stage ``s+1`` (stages have equal subgroup sizes, so
the transfer is a rank-to-rank bijection); the modeled time is one
alpha-beta term over the boundary's link class -- NVLink when both ranks
share a node, the per-GPU NIC share otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.cluster import ClusterSpec
from .stage import StagedCluster


@dataclass(frozen=True)
class P2PCostModel:
    """Alpha-beta cost of one rank-to-rank activation transfer."""

    cluster: ClusterSpec

    def time_ms(self, nbytes: float, inter_node: bool) -> float:
        """Milliseconds to move ``nbytes`` across one boundary link."""
        if nbytes <= 0:
            return 0.0
        if inter_node:
            alpha_us = self.cluster.alpha_inter_us
            bw_gbps = self.cluster.nic_per_gpu_gbps
        else:
            alpha_us = self.cluster.alpha_intra_us
            bw_gbps = self.cluster.intra_bw_gbps
        return alpha_us * 1e-3 + nbytes / (bw_gbps * 1e9) * 1e3

    def boundary_times_ms(
        self, staged: StagedCluster, boundary_bytes: list[float]
    ) -> tuple[float, ...]:
        """Per-boundary transfer times for ``S - 1`` activation sizes."""
        if len(boundary_bytes) != staged.num_stages - 1:
            raise ValueError(
                f"{len(boundary_bytes)} boundary sizes for "
                f"{staged.num_stages} stages"
            )
        return tuple(
            self.time_ms(nbytes, staged.boundary_inter_node(b))
            for b, nbytes in enumerate(boundary_bytes)
        )
