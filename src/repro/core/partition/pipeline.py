"""Pipeline scheduling and cost estimation (paper Sec. 5.3, Fig. 9).

Given a partitioned range, instructions are divided into *stages*
(maximal runs of consecutive computation or communication); within each
stage the chunks execute in partition order (chunk 1 of the stage first,
then chunk 2, ...).  The resulting interleaved order is simulated on the
two-stream model to obtain ``P(i, n, k)`` -- each pseudo-instruction
starts at the later of (i) the end of its dependencies and (ii) the end
of the previous instruction on its stream, exactly the paper's rule.

Chunk costs come from the caching profiler queried at *chunked shapes*;
irregular (A_irr) operands use the static-shape approximation: the
uniform shape at capacity ``C / k`` (paper Sec. 3).

The DP evaluates ``P(i, n, k)`` for every candidate range and several
``k``, and the re-optimization loop re-runs the DP on routing drift, so
this module is built for repeated evaluation: :class:`RangeContext`
precomputes everything about a range that does not depend on ``k`` or on
the routing signature (stage decomposition, intra-range dependencies,
boundary-overhead operands, chunk-duration cache keys) and
:class:`PlanCaches` memoizes the signature-independent numbers (compute
chunk durations, boundary overheads) plus finished pipeline simulations
keyed by the realized all-to-all chunk durations.  All paths -- the
one-shot :func:`pipeline_cost_ms`, the reference DP and the fast DP --
run through the same :meth:`RangeContext.cost` core, so caching can
never change a predicted number: a cache hit returns the value the
uncached evaluation would have produced, bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ...ir import AXIS_IRREGULAR as IRR
from ...ir import NOT_PARTITIONED as NP
from ...ir import Dim, Instruction, Program, TensorType
from ...runtime.batch import pack_lane, simulate_lanes
from ..cache import LRUCache
from ..cost_model import CostEstimator
from .axis_inference import InferenceResult


def chunk_type(t: TensorType, axis: int, parts: int, index: int = 0) -> TensorType:
    """Static type of one chunk of a value partitioned at ``axis``.

    Real axes shrink the dimension (array_split convention); the
    irregular axis keeps the buffer shape but, for *cost* purposes, scales
    the capacity (or token) dimension -- the static-shape approximation.
    """
    if axis == NP:
        return t
    if axis == IRR:
        if t.has_dim(Dim.CAPACITY):
            i = t.dim_index(Dim.CAPACITY)
        elif t.has_dim(Dim.TOKENS):
            i = t.dim_index(Dim.TOKENS)
        else:
            return t
        new_shape = list(t.shape)
        new_shape[i] = max(1, math.ceil(t.shape[i] / parts))
        return t.with_shape(tuple(new_shape))
    return t.split(axis, parts, index)


def _compute_chunk_ms(
    instr: Instruction,
    program: Program,
    axes: InferenceResult,
    parts: int,
    costs: CostEstimator,
) -> float:
    """Chunk duration of a non-collective instruction (profiler query at
    the chunked shapes).  Pure in (instr, operand axes, parts): the
    planner memoizes it under exactly that key."""
    in_types = [
        chunk_type(program.type_of(v), axes.axis_of(v), parts)
        for v in instr.inputs
    ]
    attrs = instr.attrs
    if "capacity" in attrs and any(
        axes.axis_of(v) == IRR for v in list(instr.inputs) + list(instr.outputs)
    ):
        attrs = {
            **attrs,
            "capacity": max(1, math.ceil(attrs["capacity"] / parts)),
        }
    return costs.profiler.op_time_ms(instr.op, in_types, attrs)


def chunk_duration_ms(
    instr: Instruction,
    program: Program,
    axes: InferenceResult,
    parts: int,
    costs: CostEstimator,
) -> float:
    """Predicted duration of one chunk of ``instr`` when split ``parts`` ways."""
    if instr.op == "all_to_all":
        out_axis = axes.axis_of(instr.outputs[0])
        # irregular chunks route through the estimator so the static-shape
        # approximation is conditioned on the layer's routing signature
        return costs.a2a_chunk_ms(
            instr, program, parts, irregular=(out_axis == IRR)
        )
    return _compute_chunk_ms(instr, program, axes, parts, costs)


def max_feasible_parts(
    instrs: list[Instruction],
    program: Program,
    axes: InferenceResult,
) -> int:
    """Largest k the partitioned dimensions allow (paper Sec. 5.1: "the
    number of partitions k is limited by the size of the partitioned
    dimension")."""
    limit = 1 << 30
    seen: set[int] = set()
    for ins in instrs:
        for v in list(ins.inputs) + list(ins.outputs):
            if v in seen:
                continue
            seen.add(v)
            axis = axes.axis_of(v)
            if axis >= 0:
                limit = min(limit, program.type_of(v).shape[axis])
    return max(limit, 1)


@dataclass
class Stage:
    """A maximal run of same-stream instructions within the range."""

    is_comm: bool
    indices: list[int] = field(default_factory=list)


def build_stages(instrs: list[Instruction]) -> list[Stage]:
    """Split the range into alternating computation/communication stages."""
    stages: list[Stage] = []
    for i, ins in enumerate(instrs):
        if not stages or stages[-1].is_comm != ins.is_comm:
            stages.append(Stage(is_comm=ins.is_comm))
        stages[-1].indices.append(i)
    return stages


@dataclass
class PipelineCost:
    """Cost estimate of one pipelined range."""

    total_ms: float
    pipeline_ms: float
    overhead_ms: float
    num_stages: int


#: bound of the pipeline-simulation cache.  Its keys embed realized a2a
#: chunk durations, so a drifting run mints new keys forever; the cap
#: holds several full plans' worth of simulations (a 12-layer GPT2-S-MoE
#: plan produces ~1.1k) and evictions only cost a re-simulation.
DEFAULT_SIM_CACHE_SIZE = 8192


@dataclass
class PlanCaches:
    """Memoization shared across ``P(i, n, k)`` evaluations.

    ``chunk`` and ``overhead`` hold signature-independent numbers and
    stay valid across re-plans of the same program; their key spaces are
    bounded by the program structure, so they are unbounded LRU maps.
    ``sim`` keys finished two-stream simulations by the realized
    all-to-all chunk durations -- it invalidates itself when the routing
    signature moves the all-to-all prices, and because every distinct
    signature mints fresh keys it is LRU-bounded.  All counters feed the
    planner report.
    """

    chunk: LRUCache = field(
        default_factory=lambda: LRUCache(name="planner-chunk-ms")
    )
    overhead: LRUCache = field(
        default_factory=lambda: LRUCache(name="planner-overhead-ms")
    )
    sim: LRUCache = field(
        default_factory=lambda: LRUCache(
            DEFAULT_SIM_CACHE_SIZE, name="planner-pipe-sim"
        )
    )
    #: batch evaluations of sim-cache misses (one per
    #: :func:`resolve_pending` call) and the lanes they carried;
    #: ``batch_lockstep_lanes`` counts the subset priced through the
    #: vectorized engine (the rest ran the scalar recurrence -- see the
    #: width cutover in :func:`resolve_pending`)
    batch_calls: int = 0
    batch_lanes: int = 0
    batch_lockstep_lanes: int = 0

    def stats(self) -> dict:
        return {
            "chunk": self.chunk.stats(),
            "overhead": self.overhead.stats(),
            "sim": self.sim.stats(),
            "batch": {
                "calls": self.batch_calls,
                "lanes": self.batch_lanes,
                "lockstep_lanes": self.batch_lockstep_lanes,
            },
        }


class RangeContext:
    """Everything about one candidate range that is independent of ``k``
    and of the routing signature.

    Building a context costs one pass over the range; evaluating
    ``cost(k)`` afterwards touches only the pieces that actually change
    (chunk durations via the caches, the two-stream recurrence).  The DP
    builds one context per candidate range and reuses it across every
    ``k`` -- and, via :class:`~repro.core.partition.dp.PlannerState`,
    across re-plans.
    """

    __slots__ = (
        "program",
        "instrs",
        "axes",
        "start",
        "end",
        "stages",
        "deps",
        "a2a_idx",
        "chunk_keys",
        "entry_nbytes",
        "exit_pairs",
        "k_limit",
        "_dur_templates",
        "_lane_packs",
    )

    def __init__(
        self,
        program: Program,
        instrs: list[Instruction],
        axes: InferenceResult,
        start: int = 0,
        end: int | None = None,
    ) -> None:
        self.program = program
        self.instrs = instrs
        self.axes = axes
        self.start = start
        self.end = end if end is not None else start + len(instrs)
        self.stages = build_stages(instrs)
        self.k_limit = max_feasible_parts(instrs, program, axes)

        # producer index within the range, per value id
        producer: dict[int, int] = {}
        for i, ins in enumerate(instrs):
            for o in ins.outputs:
                producer[o] = i
        # Per-instruction intra-range dependencies, cross-stage only.
        # Within a stage every execution runs on one stream in sequence,
        # so the stream chain already dominates any same-stage producer
        # -- and the capacity-passing gate between chunks p-1 and p of a
        # routing op, which is always same-stage.  Dropping the dominated
        # edges changes no max() result, so predicted times are
        # unaffected bit for bit; it just shrinks the recurrence.
        stage_of = [0] * len(instrs)
        for si, stage in enumerate(self.stages):
            for i in stage.indices:
                stage_of[i] = si
        self.deps = [
            [
                producer[v]
                for v in ins.inputs
                if v in producer and stage_of[producer[v]] != stage_of[i]
            ]
            for i, ins in enumerate(instrs)
        ]
        self.a2a_idx = [
            i for i, ins in enumerate(instrs) if ins.op == "all_to_all"
        ]
        # memoization key per non-collective instruction: the chunk
        # duration is a pure function of (instr, operand axes, parts)
        self.chunk_keys: list[tuple | None] = []
        for i, ins in enumerate(instrs):
            if ins.op == "all_to_all":
                self.chunk_keys.append(None)
            else:
                ax = tuple(
                    axes.axis_of(v)
                    for v in list(ins.inputs) + list(ins.outputs)
                )
                self.chunk_keys.append((ins.uid, ax))

        # boundary-overhead operands (paper Challenge 2 / Fig. 13):
        # values split on entry and reconstructed on exit.  Sorted so the
        # float accumulation order is canonical everywhere.
        produced: set[int] = set(producer)
        consumed: set[int] = set()
        for ins in instrs:
            consumed.update(ins.inputs)
        self.entry_nbytes = [
            program.type_of(vid).nbytes
            for vid in sorted(consumed - produced)
            if axes.axis_of(vid) != NP
        ]
        self.exit_pairs = [
            (vid, program.type_of(vid).nbytes)
            for vid in sorted(produced)
            if axes.axis_of(vid) != NP
        ]
        # parts -> duration list with all-to-all slots left as None (the
        # only signature-dependent entries); filled per evaluation
        self._dur_templates: dict[int, list] = {}
        # parts -> packed event stream for the lockstep batch engine
        self._lane_packs: dict[int, object] = {}

    # -- the three cost components ----------------------------------------

    def chunk_durations(
        self, parts: int, costs: CostEstimator, caches: PlanCaches | None
    ) -> list[float]:
        """Per-instruction chunk durations at ``parts``-way splitting.

        All-to-alls always re-price through the estimator (its own cache
        keys on the routing signature); everything else is memoized here.
        """
        axes = self.axes
        if caches is None:
            return [
                chunk_duration_ms(ins, self.program, axes, parts, costs)
                for ins in self.instrs
            ]
        template = self._dur_templates.get(parts)
        if template is None:
            chunk = caches.chunk
            template = []
            for ins, key in zip(self.instrs, self.chunk_keys):
                if key is None:  # all_to_all: re-priced per evaluation
                    template.append(None)
                    continue
                full_key = (key[0], parts, key[1])
                t = chunk.get(full_key)
                if t is None:
                    t = _compute_chunk_ms(
                        ins, self.program, axes, parts, costs
                    )
                    chunk.put(full_key, t)
                template.append(t)
            self._dur_templates[parts] = template
        durs = template.copy()
        for i in self.a2a_idx:
            ins = self.instrs[i]
            durs[i] = costs.a2a_chunk_ms(
                ins,
                self.program,
                parts,
                irregular=(axes.axis_of(ins.outputs[0]) == IRR),
            )
        return durs

    def boundary_overhead_ms(
        self, parts: int, costs: CostEstimator, consumers_after
    ) -> float:
        """Cost of the split / reconstruct instructions at the range
        borders.  Splitting along a leading axis is a strided copy of the
        chunk; reconstruction (concat or irregular accumulate) copies the
        full tensor.  This is the partition overhead that makes
        over-partitioning unprofitable (paper Challenge 2 / Fig. 13).

        ``consumers_after`` is any container answering ``vid in ...`` for
        "is this value consumed outside the range" (a plain set, or the
        planner's O(1) use-position index).
        """
        gpu = costs.profiler.gpu
        fw = costs.profiler.framework
        overhead = 0.0
        # entry splits: one split_chunk (or route_slice) per chunk per value
        for nbytes in self.entry_nbytes:
            overhead += (
                parts * fw.launch_ms(1)
                + gpu.mem_time_ms(2.0 * nbytes / parts) * parts
            )
        # exit reconstruction: one concat/accumulate per exported value
        for vid, nbytes in self.exit_pairs:
            if vid in consumers_after:
                overhead += fw.launch_ms(1) + gpu.mem_time_ms(2.0 * nbytes)
        return overhead

    def simulate_ms(self, durs: list[float], parts: int) -> float:
        """The two-stream pipeline recurrence over the interleaved order.

        Each pseudo-instruction starts at the later of the end of its
        (cross-stage) dependencies and the end of the previous
        instruction on its stream; within a stage, chunks run in
        partition order, serializing capacity passing for free.
        """
        n = len(durs)
        if n == 0:
            return 0.0
        comp_free = 0.0
        comm_free = 0.0
        end = [0.0] * (n * parts)
        deps = self.deps
        for stage in self.stages:
            indices = stage.indices
            if stage.is_comm:
                for p in range(parts):
                    for i in indices:
                        dep = 0.0
                        for j in deps[i]:
                            e = end[j * parts + p]
                            if e > dep:
                                dep = e
                        start = comm_free if comm_free > dep else dep
                        comm_free = start + durs[i]
                        end[i * parts + p] = comm_free
            else:
                for p in range(parts):
                    for i in indices:
                        dep = 0.0
                        for j in deps[i]:
                            e = end[j * parts + p]
                            if e > dep:
                                dep = e
                        start = comp_free if comp_free > dep else dep
                        comp_free = start + durs[i]
                        end[i * parts + p] = comp_free
        return max(end)

    def lane_pack(self, parts: int):
        """The duration-independent packed event stream of this range at
        ``parts``-way splitting, for :func:`~repro.runtime.batch
        .simulate_lanes` -- cached, like the stage decomposition."""
        pack = self._lane_packs.get(parts)
        if pack is None:
            pack = pack_lane(self.stages, self.deps, parts, len(self.instrs))
            self._lane_packs[parts] = pack
        return pack

    def begin_cost(
        self,
        parts: int,
        costs: CostEstimator,
        consumers_after,
        caches: PlanCaches,
    ) -> "PendingCost":
        """Price a candidate through the caches, deferring any missing
        pipeline simulation.

        Touches the chunk / sim / overhead caches in exactly the order
        :meth:`cost` does, so counters and contents stay comparable; the
        only difference is that a sim-cache miss leaves
        ``pipeline_ms = None`` for :func:`resolve_pending` to fill with
        one lockstep batch instead of one scalar recurrence per miss.
        """
        durs = self.chunk_durations(parts, costs, caches)
        sim_key = (
            self.start,
            self.end,
            parts,
            tuple(durs[i] for i in self.a2a_idx),
        )
        pipeline_ms = caches.sim.get(sim_key)
        overhead = 0.0
        if consumers_after is not None:
            oh_key = (self.start, self.end, parts)
            overhead = caches.overhead.get(oh_key)
            if overhead is None:
                overhead = self.boundary_overhead_ms(
                    parts, costs, consumers_after
                )
                caches.overhead.put(oh_key, overhead)
        return PendingCost(
            ctx=self,
            parts=parts,
            durs=durs,
            sim_key=sim_key,
            pipeline_ms=pipeline_ms,
            overhead_ms=overhead,
        )

    def cost(
        self,
        parts: int,
        costs: CostEstimator,
        consumers_after=None,
        caches: PlanCaches | None = None,
    ) -> PipelineCost:
        """The paper's ``P(i, n, k)`` for this range."""
        durs = self.chunk_durations(parts, costs, caches)
        if caches is None:
            pipeline_ms = self.simulate_ms(durs, parts)
        else:
            # a finished simulation depends only on the range structure
            # and the duration vector; the non-a2a entries are pinned by
            # (range, parts), so keying by the realized all-to-all chunk
            # durations makes the entry self-invalidating under drift
            sim_key = (
                self.start,
                self.end,
                parts,
                tuple(durs[i] for i in self.a2a_idx),
            )
            pipeline_ms = caches.sim.get(sim_key)
            if pipeline_ms is None:
                pipeline_ms = self.simulate_ms(durs, parts)
                caches.sim.put(sim_key, pipeline_ms)
        overhead = 0.0
        if consumers_after is not None:
            if caches is None:
                overhead = self.boundary_overhead_ms(
                    parts, costs, consumers_after
                )
            else:
                oh_key = (self.start, self.end, parts)
                overhead = caches.overhead.get(oh_key)
                if overhead is None:
                    overhead = self.boundary_overhead_ms(
                        parts, costs, consumers_after
                    )
                    caches.overhead.put(oh_key, overhead)
        return PipelineCost(
            total_ms=pipeline_ms + overhead,
            pipeline_ms=pipeline_ms,
            overhead_ms=overhead,
            num_stages=len(self.stages),
        )


@dataclass
class PendingCost:
    """One DP candidate priced through the caches, with its pipeline
    simulation possibly still owed (``pipeline_ms is None`` until
    :func:`resolve_pending` batch-evaluates the misses)."""

    ctx: RangeContext
    parts: int
    durs: list[float]
    sim_key: tuple
    pipeline_ms: float | None
    overhead_ms: float

    def cost(self) -> PipelineCost:
        return PipelineCost(
            total_ms=self.pipeline_ms + self.overhead_ms,
            pipeline_ms=self.pipeline_ms,
            overhead_ms=self.overhead_ms,
            num_stages=len(self.ctx.stages),
        )


#: Mean lockstep width (total events / longest lane) above which the
#: vectorized engine beats the scalar recurrence.  Each lockstep step
#: costs a fixed handful of numpy calls (~50us) no matter how many lanes
#: it advances, while CPython runs a scalar event in ~150ns -- so the
#: measured crossover sits near 350-500 events per step.  The DP's
#: candidate batches average ~80-300 (many short lanes behind a few long
#: ones) and stay scalar; wide scenario-style batches vectorize.
LOCKSTEP_MIN_MEAN_WIDTH = 512


def resolve_pending(missing: list[PendingCost], caches: PlanCaches) -> None:
    """Evaluate every owed pipeline simulation in one batch.

    Picks the engine by batch shape: wide batches (mean events per
    lockstep step >= :data:`LOCKSTEP_MIN_MEAN_WIDTH`) run the vectorized
    :func:`~repro.runtime.batch.simulate_lanes`; narrow ones run the
    scalar recurrence lane by lane.  Both execute the exact float64
    operation chain of ``missing[l].ctx.simulate_ms(durs, parts)``, so
    cached values are bit-identical either way.  Results are ``put`` in
    list order -- the order the scalar loop would have filled the cache.
    """
    if not missing:
        return
    caches.batch_calls += 1
    caches.batch_lanes += len(missing)
    # event count per lane is parts * len(instrs); packs are only built
    # (and cached on the contexts) when the lockstep engine is taken
    events = [p.parts * len(p.ctx.instrs) for p in missing]
    t_max = max(events)
    if t_max and sum(events) >= LOCKSTEP_MIN_MEAN_WIDTH * t_max:
        caches.batch_lockstep_lanes += len(missing)
        packs = [p.ctx.lane_pack(p.parts) for p in missing]
        durs = [np.asarray(p.durs, dtype=np.float64) for p in missing]
        results = simulate_lanes(packs, durs)
        for pend, ms in zip(missing, results):
            pend.pipeline_ms = float(ms)
            caches.sim.put(pend.sim_key, pend.pipeline_ms)
        return
    for pend in missing:
        pend.pipeline_ms = pend.ctx.simulate_ms(pend.durs, pend.parts)
        caches.sim.put(pend.sim_key, pend.pipeline_ms)


def pipeline_cost_ms(
    program: Program,
    instrs: list[Instruction],
    axes: InferenceResult,
    parts: int,
    costs: CostEstimator,
    consumers_after: set[int] | None = None,
) -> PipelineCost:
    """The paper's ``P(i, n, k)``: end-to-end time of the pipelined range.

    One-shot form: builds a throwaway :class:`RangeContext` and evaluates
    it uncached -- the exact computation the fast planner memoizes.
    """
    return RangeContext(program, instrs, axes).cost(
        parts, costs, consumers_after
    )


def sequential_cost_ms(
    program: Program, instrs: list[Instruction], costs: CostEstimator
) -> float:
    """Unpartitioned execution time of a range (the k=1 / no-pipeline case)."""
    return sum(costs.duration_ms(ins, program) for ins in instrs)
