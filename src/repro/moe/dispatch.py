"""Token dispatch/combine between sequence order and expert buffers.

These are the "scatter to [E, C, H] buffer" / "gather back to [B, S, H]"
operations around the all-to-alls in an MoE layer (paper Fig. 1), plus
their exact gradients, and the device-to-device buffer exchange that an
all-to-all performs on the dispatch buffer.
"""

from __future__ import annotations

import numpy as np

from .routing import RoutingInfo


def dispatch(x_flat: np.ndarray, info: RoutingInfo) -> np.ndarray:
    """Scatter tokens into the [E, C, H] dispatch buffer (zero padded)."""
    t, h = x_flat.shape
    if t != info.num_tokens:
        raise ValueError(f"{t} tokens vs routing over {info.num_tokens}")
    buf = np.zeros((info.num_experts, info.capacity, h), dtype=x_flat.dtype)
    buf[info.expert_idx, info.slot_idx] = x_flat[info.token_idx]
    return buf


def dispatch_dx(dbuf: np.ndarray, info: RoutingInfo) -> np.ndarray:
    """Gradient of :func:`dispatch` w.r.t. the token input (gather-add)."""
    h = dbuf.shape[-1]
    dx = np.zeros((info.num_tokens, h), dtype=dbuf.dtype)
    np.add.at(dx, info.token_idx, dbuf[info.expert_idx, info.slot_idx])
    return dx


def gate_weights(info: RoutingInfo, probs: np.ndarray) -> np.ndarray:
    """Combine weight of each accepted assignment: the gate probability of
    the (token, chosen expert) pair."""
    return probs[info.token_idx, info.expert_idx]


def combine(buf: np.ndarray, info: RoutingInfo, probs: np.ndarray) -> np.ndarray:
    """Gather expert outputs back to token order, weighted by gate probs.

    Dropped tokens receive zeros (they skip the expert entirely; the
    residual connection carries their activation forward).
    """
    h = buf.shape[-1]
    w = gate_weights(info, probs).astype(buf.dtype)
    y = np.zeros((info.num_tokens, h), dtype=buf.dtype)
    np.add.at(
        y, info.token_idx, buf[info.expert_idx, info.slot_idx] * w[:, None]
    )
    return y


def combine_dx(dy_flat: np.ndarray, info: RoutingInfo, probs: np.ndarray) -> np.ndarray:
    """Gradient of :func:`combine` w.r.t. the expert-output buffer."""
    h = dy_flat.shape[-1]
    w = gate_weights(info, probs).astype(dy_flat.dtype)
    dbuf = np.zeros((info.num_experts, info.capacity, h), dtype=dy_flat.dtype)
    dbuf[info.expert_idx, info.slot_idx] = dy_flat[info.token_idx] * w[:, None]
    return dbuf


def combine_dprobs(
    dy_flat: np.ndarray, buf: np.ndarray, info: RoutingInfo
) -> np.ndarray:
    """Gradient of :func:`combine` w.r.t. the gate probabilities."""
    dprobs = np.zeros((info.num_tokens, info.num_experts), dtype=dy_flat.dtype)
    contrib = np.sum(
        dy_flat[info.token_idx] * buf[info.expert_idx, info.slot_idx], axis=-1
    )
    np.add.at(dprobs, (info.token_idx, info.expert_idx), contrib)
    return dprobs


# ---------------------------------------------------------------------------
# Buffer exchange (the data motion an all-to-all performs)
# ---------------------------------------------------------------------------


def exchange_expert_buffers(bufs: list[np.ndarray]) -> list[np.ndarray]:
    """Functional all-to-all over per-device dispatch buffers.

    Device ``d`` holds ``bufs[d]`` of shape [E, C, H] where row ``e`` is
    destined for the device owning expert ``e`` (experts are sharded
    contiguously: device ``owner = e // El``).  Returns the received
    buffers, laid out *local-expert-major*: on device ``d``, row
    ``le * G + s`` holds what source device ``s`` sent for local expert
    ``le`` -- i.e. a reshape to [El, G*C, H] groups each local expert's
    tokens contiguously for the grouped expert FFN.
    """
    g = len(bufs)
    e, c, h = bufs[0].shape
    if e % g != 0:
        raise ValueError(f"{e} experts not divisible by {g} devices")
    el = e // g
    out: list[np.ndarray] = []
    for d in range(g):
        recv = np.empty((el * g, c, h), dtype=bufs[0].dtype)
        for s in range(g):
            # chunk of source s targeted at device d: rows [d*el, (d+1)*el)
            chunk = bufs[s][d * el : (d + 1) * el]  # [El, C, H]
            recv[np.arange(el) * g + s] = chunk
        out.append(recv)
    return out


def exchange_expert_buffers_inverse(bufs: list[np.ndarray]) -> list[np.ndarray]:
    """Inverse of :func:`exchange_expert_buffers` (the second all-to-all)."""
    g = len(bufs)
    eg, c, h = bufs[0].shape
    el = eg // g
    out: list[np.ndarray] = []
    for d in range(g):
        send = np.empty((el * g, c, h), dtype=bufs[0].dtype)
        for s in range(g):
            # what device s holds for my experts: its rows le*g + d... wait,
            # device s holds rows (le*g + src) keyed by *its* local experts.
            # The chunk destined back to d is, for each of s's local experts
            # le, the row le*g + d.
            send[s * el : (s + 1) * el] = bufs[s][np.arange(el) * g + d]
        out.append(send)
    return out
