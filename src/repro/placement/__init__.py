"""Expert placement & replication optimizer (ROADMAP placement pass).

Lancet reschedules *around* routing skew; this package moves the skew
itself.  An :class:`ExpertPlacement` reassigns each MoE expert to a
device -- and can *replicate* ("shadow") hot experts across several
devices, splitting their traffic by fixed fractions -- so the realized
all-to-all pair-bytes matrix flattens before the scheduler ever sees it.
:class:`PlacementOptimizer` searches placements greedily to minimize the
bottleneck a2a phase under a :class:`~repro.runtime.ClusterSpec`'s
hierarchical network model (intra-node moves are nearly free; the NIC is
where placement wins), differentially verified against the brute-force
reference in :mod:`repro.placement.reference`.  The trace-replay drill
in :mod:`repro.placement.replay` prices migrations (one-off weight
transfer vs. steady-state win) over recorded dispatch-count sequences,
mirroring the ExpertMigration replay-evaluation methodology.

Threading through the stack: :meth:`RoutingSignature.remap
<repro.runtime.RoutingSignature.remap>` folds a placement's traffic
splits into the signature, :class:`~repro.core.LancetOptimizer`
accepts ``placement=`` and plans against the remapped signatures,
:class:`~repro.train.ReoptimizingTrainer` triggers priced migrations on
drift (``placement_optimizer=``), and :class:`~repro.api.Plan` /
:class:`~repro.api.PlanStore` serialize the placement and qualify store
keys by its fingerprint.
"""

from .model import (
    ExpertPlacement,
    PlacedRoutingModel,
    normalize_placement,
    placement_for,
    placement_map_fingerprint,
    placement_map_from_json,
    placement_map_is_identity,
    placement_map_to_json,
)
from .optimizer import (
    GREEDY_BOUND,
    PlacementMove,
    PlacementOptimizer,
    PlacementResult,
    migration_cost_ms,
)
from .reference import brute_force_placement, remap_pair_bytes_reference
from .replay import MigrationEvent, ReplayReport, replay_trace

__all__ = [
    "ExpertPlacement",
    "GREEDY_BOUND",
    "MigrationEvent",
    "PlacedRoutingModel",
    "PlacementMove",
    "PlacementOptimizer",
    "PlacementResult",
    "ReplayReport",
    "brute_force_placement",
    "migration_cost_ms",
    "normalize_placement",
    "placement_for",
    "placement_map_fingerprint",
    "placement_map_from_json",
    "placement_map_is_identity",
    "placement_map_to_json",
    "remap_pair_bytes_reference",
    "replay_trace",
]
