"""Mixture-of-Experts numerical substrate.

Standalone, numerically exact implementation of gating, routing, capacity,
dispatch/combine, grouped expert FFNs, and the (simulated) multi-device
MoE layer -- everything the paper's MoE workload needs, independent of the
compiler IR.
"""

from .capacity import CapacityState, expert_capacity
from .dispatch import (
    combine,
    combine_dprobs,
    combine_dx,
    dispatch,
    dispatch_dx,
    exchange_expert_buffers,
    exchange_expert_buffers_inverse,
    gate_weights,
)
from .experts import expert_ffn, expert_ffn_backward, gelu, gelu_grad
from .layer import DistributedMoELayer, MoEForwardCache, MoELayerParams, softmax
from .partitioned import (
    MicrobatchTrace,
    forward_microbatched_capacity_passing,
    forward_microbatched_naive,
)
from .routing import (
    RoutingInfo,
    route_bpr,
    route_expert_choice,
    route_hash,
    route_random,
    route_switch,
    route_tokens,
    topk_choices,
)

__all__ = [
    "CapacityState",
    "DistributedMoELayer",
    "MicrobatchTrace",
    "MoEForwardCache",
    "MoELayerParams",
    "RoutingInfo",
    "combine",
    "combine_dprobs",
    "combine_dx",
    "dispatch",
    "dispatch_dx",
    "exchange_expert_buffers",
    "exchange_expert_buffers_inverse",
    "expert_capacity",
    "expert_ffn",
    "expert_ffn_backward",
    "forward_microbatched_capacity_passing",
    "forward_microbatched_naive",
    "gate_weights",
    "gelu",
    "gelu_grad",
    "route_bpr",
    "route_expert_choice",
    "route_hash",
    "route_random",
    "route_switch",
    "route_tokens",
    "softmax",
    "topk_choices",
]
