#!/usr/bin/env python
"""Visualize what Lancet changes: ASCII timelines of one MoE layer.

Renders the compute/communication streams of a single training iteration
before and after optimization, zoomed to the window around the first MoE
layer, so the overlap structure (paper Fig. 4) is visible in a terminal.

Run:  python examples/timeline_view.py

See docs/TUTORIAL.md (step 6) for how to read these timelines.
"""

from repro import (
    Scenario,
    SimulationConfig,
    compile,
    simulate_cluster,
    simulate_program,
)
from repro.runtime import (
    imbalance_summary,
    overlap_summary,
    render_cluster_timeline,
    render_timeline,
)


def first_moe_window(graph, timeline, pad_ms=1.0):
    """Time window around the first MoE layer's forward all-to-alls."""
    ml = graph.moe_layers[0]
    uids = {ml.a2a_first_uid, ml.a2a_second_uid}
    spans = [iv for iv in timeline.intervals if iv.uid in uids]
    if not spans:  # optimized program: chunks carry origin uids instead
        starts, ends = [], []
        for iv in timeline.intervals:
            if iv.op == "all_to_all":
                starts.append(iv.start)
                ends.append(iv.end)
        spans_start, spans_end = starts[0], ends[3]
    else:
        spans_start = min(iv.start for iv in spans)
        spans_end = max(iv.end for iv in spans)
    return max(spans_start - pad_ms, 0.0), spans_end + pad_ms


def main() -> None:
    scenario = Scenario.preset("gpt2-s-moe/a100x16")
    graph = scenario.build_graph()
    plan = compile(scenario)
    cluster = plan.cluster

    base_tl = simulate_program(
        graph.program,
        config=SimulationConfig(
            cluster=cluster, padded_a2a=True, routing=scenario.routing_model()
        ),
    )
    opt_tl = plan.simulate()

    print("=== baseline (RAF schedule): first MoE layer, forward ===")
    lo, hi = first_moe_window(graph, base_tl)
    print(render_timeline(base_tl, width=96, start_ms=lo, end_ms=hi))
    print("the all-to-alls (A) run with the compute stream idle.\n")

    print("=== Lancet: same window ===")
    # the optimized program interleaves chunked a2as with computation
    print(render_timeline(opt_tl, width=96, start_ms=lo, end_ms=hi))
    print("chunked all-to-alls now share the window with attention/expert "
          "chunks on the compute lane.\n")

    print("=== whole iteration ===")
    print("baseline :", overlap_summary(base_tl))
    print("lancet   :", overlap_summary(opt_tl))

    print("\n=== per-device view: hot experts + a straggler GPU ===")
    # Lancet's irregular all-to-all tracks the realized routing, so with
    # skewed expert popularity each device's collective busy time
    # differs; a slowed device 0 additionally drags every collective.
    skew = scenario.with_(concentration=1.0, hot_experts=2, hot_boost=0.3)
    skew_cfg = SimulationConfig(
        cluster=cluster,
        padded_a2a=False,
        routing=skew.routing_model(),
        straggler_slowdown={0: 1.25},
    )
    ctl = simulate_cluster(plan.program, config=skew_cfg)
    print(render_cluster_timeline(ctl, width=88, start_ms=lo, end_ms=hi,
                                  devices=[0, 1, 8]))
    print("device lanes differ: hot-expert owners' A columns run longer,")
    print("and d0 (the straggler) stretches its compute rows.")
    print(imbalance_summary(ctl))


if __name__ == "__main__":
    main()
