"""repro.pipeline: hybrid pipeline-parallel x expert-parallel planning
and simulation.

The flat planner models one SPMD expert-parallel group; this package adds
the stage dimension the ROADMAP calls for: partition the transformer into
pipeline stages, each owning a device subgroup of the base
:class:`~repro.runtime.ClusterSpec`, so all-to-alls stay *within* a stage
while p2p activations cross stages.

- :class:`StageSpec` / :class:`StagedCluster` -- the nested device-group
  topology model (contiguous layer runs on contiguous device slices).
- :class:`P2PCostModel` -- alpha-beta activation-transfer costs over
  stage boundaries (NVLink within a node, NIC share across).
- :func:`gpipe_order` / :func:`one_f_one_b_order` / :func:`schedule_order`
  / :func:`peak_in_flight` -- microbatch schedules (GPipe vs 1F1B behind
  one ablation switch) as per-stage :class:`Job` timelines.
- :func:`split_stages` / :func:`extract_subprogram` / :func:`reassemble`
  -- the stage-partitioner: per-stage forward/backward/tail subprograms
  that the unmodified :class:`~repro.core.LancetOptimizer` plans against
  its stage's subgroup, then stitched back into one flat program.
- :func:`simulate_staged` / :func:`stage_costs` / :class:`StageCosts` --
  the staged simulator composing per-stage
  :func:`~repro.runtime.simulate_cluster` results with p2p dependencies
  into a :class:`~repro.runtime.ClusterTimeline`-compatible figure,
  differential-tested bit-for-bit against :func:`replay_reference`.
- :func:`plan_stages` / :class:`StagedPlanResult` / :class:`StageMap` --
  the boundary planner (heuristic ranking + exact simulation + per-stage
  optimization), whose :class:`StageMap` rides inside
  :class:`~repro.api.Plan` artifacts and store keys.
"""

from .p2p import P2PCostModel
from .partition import (
    Segment,
    SplitProgram,
    extract_subprogram,
    reassemble,
    split_stages,
)
from .planner import (
    StagedPlanResult,
    enumerate_layer_counts,
    layer_costs,
    pipeline_bound_ms,
    plan_stages,
)
from .reference import replay_reference
from .schedule import (
    Job,
    gpipe_order,
    one_f_one_b_order,
    peak_in_flight,
    schedule_order,
)
from .simulate import (
    StageCosts,
    StagedSimulation,
    simulate_staged,
    stage_costs,
)
from .stage import SCHEDULES, StagedCluster, StageMap, StageSpec

__all__ = [
    "Job",
    "P2PCostModel",
    "SCHEDULES",
    "Segment",
    "SplitProgram",
    "StageCosts",
    "StageMap",
    "StageSpec",
    "StagedCluster",
    "StagedPlanResult",
    "StagedSimulation",
    "enumerate_layer_counts",
    "extract_subprogram",
    "gpipe_order",
    "layer_costs",
    "one_f_one_b_order",
    "peak_in_flight",
    "pipeline_bound_ms",
    "plan_stages",
    "reassemble",
    "replay_reference",
    "schedule_order",
    "simulate_staged",
    "split_stages",
    "stage_costs",
]
