"""Property-based tests for scheduling invariants (legalizer, pipeline
scheduler, chunk typing) using hypothesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GPT2MoEConfig, build_training_graph
from repro.core import CachingOpProfiler, CommCostModel, CostEstimator, legalize_order
from repro.core.partition import build_stages, chunk_type, infer_axes, pipeline_cost_ms
from repro.ir import (
    AXIS_IRREGULAR,
    NOT_PARTITIONED,
    Dim,
    DType,
    TensorType,
    verify_schedulable,
)
from repro.runtime import COMPILED, ClusterSpec


@pytest.fixture(scope="module")
def tiny_training():
    return build_training_graph(GPT2MoEConfig.tiny(), batch=4, seq=8, num_gpus=2)


@pytest.fixture(scope="module")
def costs():
    cluster = ClusterSpec.p4de(2)
    return CostEstimator(
        CachingOpProfiler(gpu=cluster.gpu, framework=COMPILED),
        CommCostModel(cluster),
    )


class TestLegalizerProperties:
    @given(st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_any_shuffle_is_repaired(self, tiny_training, rnd):
        """legalize_order turns *any* permutation into a valid schedule
        containing exactly the same instructions."""
        p = tiny_training.program
        desired = list(p.instructions)
        rnd.shuffle(desired)
        order = legalize_order(p, desired)
        verify_schedulable(p, order)
        assert {i.uid for i in order} == {i.uid for i in p.instructions}

    @given(st.randoms(use_true_random=False))
    @settings(max_examples=10, deadline=None)
    def test_idempotent_on_legal_orders(self, tiny_training, rnd):
        """A legal order is a fixed point of the legalizer."""
        p = tiny_training.program
        desired = list(p.instructions)
        rnd.shuffle(desired)
        once = legalize_order(p, desired)
        twice = legalize_order(p, once)
        assert [i.uid for i in once] == [i.uid for i in twice]


class TestChunkTypeProperties:
    @given(
        st.integers(1, 6).flatmap(
            lambda rank: st.tuples(
                st.tuples(*[st.integers(1, 32)] * rank),
                st.integers(0, rank - 1),
                st.integers(1, 8),
            )
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_chunks_partition_the_axis(self, case):
        shape, axis, parts = case
        t = TensorType(shape, DType.F16)
        if parts > shape[axis]:
            return  # infeasible split; guarded by max_feasible_parts
        sizes = [chunk_type(t, axis, parts, i).shape[axis] for i in range(parts)]
        assert sum(sizes) == shape[axis]
        assert max(sizes) - min(sizes) <= 1  # array_split balance

    def test_irregular_chunk_never_grows(self):
        buf = TensorType((8, 13, 4), DType.F16, (Dim.EXPERT, Dim.CAPACITY, Dim.HIDDEN))
        for parts in (1, 2, 3, 4, 8):
            c = chunk_type(buf, AXIS_IRREGULAR, parts)
            assert c.shape[1] <= buf.shape[1]
            assert c.shape[0] == buf.shape[0]

    def test_np_identity(self):
        t = TensorType((3, 5), DType.F32)
        assert chunk_type(t, NOT_PARTITIONED, 4) is t


class TestPipelineSchedulerProperties:
    @pytest.fixture(scope="class")
    def moe_range(self):
        graph = build_training_graph(
            GPT2MoEConfig.gpt2_s_moe(num_layers=2), batch=16, seq=512, num_gpus=16
        )
        p = graph.program
        pos = p.instr_index()
        ml = graph.moe_layers[0]
        start = pos[ml.gate_matmul_uid] - 1
        end = pos[ml.combine_uid] + 1
        instrs = p.instructions[start:end]
        return p, instrs, infer_axes(instrs, p)

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_pipeline_at_least_critical_path(self, moe_range, costs, k):
        """The pipelined time can never beat the larger of (total compute,
        total communication) of the chunked ops."""
        p, instrs, axes = moe_range
        from repro.core.partition.pipeline import chunk_duration_ms

        comp = comm = 0.0
        for ins in instrs:
            d = chunk_duration_ms(ins, p, axes, k, costs) * k
            if ins.is_comm:
                comm += d
            else:
                comp += d
        cost = pipeline_cost_ms(p, instrs, axes, k, costs)
        assert cost.pipeline_ms >= max(comp, comm) - 1e-9

    @pytest.mark.parametrize("k", [2, 4])
    def test_pipeline_at_most_sequential_of_chunks(self, moe_range, costs, k):
        """Pipelining never exceeds running every chunk back to back."""
        p, instrs, axes = moe_range
        from repro.core.partition.pipeline import chunk_duration_ms

        total = sum(
            chunk_duration_ms(ins, p, axes, k, costs) * k for ins in instrs
        )
        cost = pipeline_cost_ms(p, instrs, axes, k, costs)
        assert cost.pipeline_ms <= total + 1e-9

    def test_stage_structure_stable(self, moe_range):
        p, instrs, _ = moe_range
        stages = build_stages(instrs)
        # stage streams strictly alternate
        for a, b in zip(stages, stages[1:]):
            assert a.is_comm != b.is_comm
        # stages cover all instructions exactly once
        seen = [i for s in stages for i in s.indices]
        assert sorted(seen) == list(range(len(instrs)))


class TestDWGreedyProperties:
    def test_greedy_never_overshoots_wildly(self, tiny_training, costs):
        """Best-fit stops once the all-to-all is covered: assigned time
        exceeds the all-to-all by at most the largest single dW."""
        from repro.core import WeightGradSchedulePass

        p = tiny_training.program.clone()
        pas = WeightGradSchedulePass(costs)
        pas.run(p)
        for rec in pas.report.records:
            if not rec.assigned_uids:
                continue
            by_uid = {i.uid: i for i in p.instructions}
            largest = max(
                costs.duration_ms(by_uid[u], p) for u in rec.assigned_uids
            )
            assert rec.assigned_ms <= rec.a2a_ms + largest + 1e-9
