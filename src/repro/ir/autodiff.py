"""Reverse-mode autodiff over the Lancet IR.

Builds the backward pass of a forward program, emitting *separate*
activation-gradient (dX) and weight-gradient (dW) instructions -- the
distinction that powers the paper's weight-gradient schedule pass: dW ops
have no consumers in the backward chain (Fig. 3a), so they can be moved to
overlap with all-to-alls.

The emitted order is the standard "eager" reverse order (each layer's dW
right next to its dX), which is exactly the *unoptimized* baseline schedule
that Lancet improves on.
"""

from __future__ import annotations

from typing import Callable

from .instruction import Instruction, InstrKind
from .program import Program


GradRule = Callable[[Program, Instruction, list[int | None]], list[int | None]]

_GRAD_RULES: dict[str, GradRule] = {}


def grad_rule(op: str) -> Callable[[GradRule], GradRule]:
    """Decorator registering the gradient rule for ``op``."""

    def deco(fn: GradRule) -> GradRule:
        _GRAD_RULES[op] = fn
        return fn

    return deco


# ---------------------------------------------------------------------------
# Gradient rules.  Each takes (program, forward instruction, grads of its
# outputs) and returns the grads of its inputs (None = no gradient).
# ---------------------------------------------------------------------------


@grad_rule("matmul")
def _grad_matmul(p: Program, instr: Instruction, gouts: list[int | None]):
    gy = gouts[0]
    if gy is None:
        return [None, None]
    x, w = instr.inputs
    (gx,) = p.add("matmul_dx", [gy, w], kind=InstrKind.DX)
    (gw,) = p.add("matmul_dw", [x, gy], kind=InstrKind.DW)
    p.grads[w] = gw.id
    return [gx.id, gw.id]


@grad_rule("bias_add")
def _grad_bias_add(p: Program, instr: Instruction, gouts):
    gy = gouts[0]
    if gy is None:
        return [None, None]
    b = instr.inputs[1]
    (gb,) = p.add("bias_grad", [gy], kind=InstrKind.DW)
    p.grads[b] = gb.id
    return [gy, gb.id]


@grad_rule("gelu")
def _grad_gelu(p: Program, instr: Instruction, gouts):
    gy = gouts[0]
    if gy is None:
        return [None]
    (gx,) = p.add("gelu_dx", [gy, instr.inputs[0]], kind=InstrKind.DX)
    return [gx.id]


@grad_rule("relu")
def _grad_relu(p: Program, instr: Instruction, gouts):
    gy = gouts[0]
    if gy is None:
        return [None]
    (gx,) = p.add("relu_dx", [gy, instr.inputs[0]], kind=InstrKind.DX)
    return [gx.id]


@grad_rule("add")
def _grad_add(p: Program, instr: Instruction, gouts):
    gy = gouts[0]
    return [gy, gy]


@grad_rule("scale")
def _grad_scale(p: Program, instr: Instruction, gouts):
    gy = gouts[0]
    if gy is None:
        return [None]
    (gx,) = p.add("scale", [gy], attrs=dict(instr.attrs), kind=InstrKind.DX)
    return [gx.id]


@grad_rule("layernorm")
def _grad_layernorm(p: Program, instr: Instruction, gouts):
    gy = gouts[0]
    if gy is None:
        return [None, None, None]
    x, gamma, beta = instr.inputs
    (gx,) = p.add("layernorm_dx", [gy, x, gamma], kind=InstrKind.DX)
    dgamma, dbeta = p.add("layernorm_dw", [gy, x], kind=InstrKind.DW)
    p.grads[gamma] = dgamma.id
    p.grads[beta] = dbeta.id
    return [gx.id, dgamma.id, dbeta.id]


@grad_rule("split3")
def _grad_split3(p: Program, instr: Instruction, gouts):
    if all(g is None for g in gouts):
        return [None]
    if any(g is None for g in gouts):
        raise NotImplementedError("partial split3 gradients unsupported")
    (gx,) = p.add("concat", list(gouts), attrs={"axis": 2}, kind=InstrKind.DX)
    return [gx.id]


@grad_rule("pos_embedding")
def _grad_pos_embedding(p: Program, instr: Instruction, gouts):
    gy = gouts[0]
    if gy is None:
        return [None, None]
    pe = instr.inputs[1]
    (gpe,) = p.add("pos_embedding_dw", [gy], kind=InstrKind.DW)
    p.grads[pe] = gpe.id
    return [gy, gpe.id]


@grad_rule("attention")
def _grad_attention(p: Program, instr: Instruction, gouts):
    gy = gouts[0]
    if gy is None:
        return [None, None, None]
    q, k, v = instr.inputs
    gq, gk, gv = p.add(
        "attention_dx", [gy, q, k, v], attrs=dict(instr.attrs), kind=InstrKind.DX
    )
    return [gq.id, gk.id, gv.id]


@grad_rule("softmax")
def _grad_softmax(p: Program, instr: Instruction, gouts):
    gy = gouts[0]
    if gy is None:
        return [None]
    y = instr.outputs[0]
    (gx,) = p.add("softmax_dx", [gy, y], kind=InstrKind.DX)
    return [gx.id]


@grad_rule("embedding")
def _grad_embedding(p: Program, instr: Instruction, gouts):
    gy = gouts[0]
    if gy is None:
        return [None, None]
    table, ids = instr.inputs
    vocab = p.type_of(table).shape[0]
    (gtable,) = p.add(
        "embedding_dw", [gy, ids], attrs={"vocab_size": vocab}, kind=InstrKind.DW
    )
    p.grads[table] = gtable.id
    return [gtable.id, None]


@grad_rule("cross_entropy")
def _grad_cross_entropy(p: Program, instr: Instruction, gouts):
    logits, labels = instr.inputs
    (glogits,) = p.add("cross_entropy_dx", [logits, labels], kind=InstrKind.DX)
    return [glogits.id, None]


@grad_rule("routing")
def _grad_routing(p: Program, instr: Instruction, gouts):
    # Routing decisions are discrete; gradient flows to the gate through
    # moe_combine's dprobs path instead.
    return [None]


@grad_rule("routing_partial")
def _grad_routing_partial(p: Program, instr: Instruction, gouts):
    return [None, None]


@grad_rule("capacity_init")
def _grad_capacity_init(p: Program, instr: Instruction, gouts):
    return []


@grad_rule("moe_dispatch")
def _grad_moe_dispatch(p: Program, instr: Instruction, gouts):
    gbuf = gouts[0]
    if gbuf is None:
        return [None, None]
    x, route = instr.inputs
    xt = p.type_of(x)
    attrs = {"batch": xt.shape[0], "seq": xt.shape[1], "hidden": xt.shape[2]}
    (gx,) = p.add("moe_dispatch_dx", [gbuf, route], attrs=attrs, kind=InstrKind.DX)
    return [gx.id, None]


@grad_rule("moe_combine")
def _grad_moe_combine(p: Program, instr: Instruction, gouts):
    gy = gouts[0]
    if gy is None:
        return [None, None, None]
    buf, route, probs = instr.inputs
    buf_t = p.type_of(buf)
    probs_t = p.type_of(probs)
    (gbuf,) = p.add(
        "moe_combine_dx",
        [gy, route, probs],
        attrs={"num_experts": buf_t.shape[0], "capacity": buf_t.shape[1]},
        kind=InstrKind.DX,
    )
    (gprobs,) = p.add(
        "moe_combine_dprobs",
        [gy, buf, route],
        attrs={
            "batch": probs_t.shape[0],
            "seq": probs_t.shape[1],
            "num_experts": probs_t.shape[2],
        },
        kind=InstrKind.DX,
    )
    return [gbuf.id, None, gprobs.id]


@grad_rule("expert_ffn")
def _grad_expert_ffn(p: Program, instr: Instruction, gouts):
    gout = gouts[0]
    if gout is None:
        return [None] * 5
    buf, w1, b1, w2, b2 = instr.inputs
    (gbuf,) = p.add(
        "expert_ffn_dx", [gout, buf, w1, b1, w2], kind=InstrKind.DX
    )
    gw1, gb1, gw2, gb2 = p.add(
        "expert_ffn_dw", [gout, buf, w1, b1, w2], kind=InstrKind.DW
    )
    p.grads[w1] = gw1.id
    p.grads[b1] = gb1.id
    p.grads[w2] = gw2.id
    p.grads[b2] = gb2.id
    return [gbuf.id, gw1.id, gb1.id, gw2.id, gb2.id]


@grad_rule("all_to_all")
def _grad_all_to_all(p: Program, instr: Instruction, gouts):
    gy = gouts[0]
    if gy is None:
        return [None]
    # the two all-to-alls are mutually inverse permutations, so the
    # gradient of a scatter is a gather and vice versa
    attrs = dict(instr.attrs)
    if attrs.get("direction") == "scatter":
        attrs["direction"] = "gather"
    elif attrs.get("direction") == "gather":
        attrs["direction"] = "scatter"
    (gx,) = p.add("all_to_all", [gy], attrs=attrs, kind=InstrKind.COMM)
    return [gx.id]


# ---------------------------------------------------------------------------
# Backward builder
# ---------------------------------------------------------------------------


def build_backward(program: Program, loss: int) -> None:
    """Append the backward pass of ``program`` computing d(loss)/d(params).

    Parameters
    ----------
    program:
        Forward program; modified in place.
    loss:
        Value id of the scalar loss (produced by a ``cross_entropy``).

    Notes
    -----
    Multiple gradient contributions to the same value are accumulated with
    explicit ``add`` instructions (kind DX).  ``program.grads`` maps each
    parameter id to its final gradient id afterwards.
    """
    contributions: dict[int, list[int]] = {}
    forward_instrs = list(program.instructions)
    value_layer: dict[int, int] = {}

    def stamp(start: int, layer: int | None) -> None:
        # propagate the forward instruction's "layer" attr (when present)
        # onto every backward instruction it spawned, so the pipeline
        # stage-partitioner can place backward work with its forward block
        if layer is None:
            return
        for new_instr in program.instructions[start:]:
            new_instr.attrs.setdefault("layer", layer)
            for out in new_instr.outputs:
                value_layer.setdefault(out, layer)

    def total_grad(vid: int) -> int | None:
        """Materialize the accumulated gradient of a value (emitting adds)."""
        contribs = contributions.get(vid)
        if not contribs:
            return None
        acc = contribs[0]
        for c in contribs[1:]:
            (s,) = program.add("add", [acc, c], kind=InstrKind.DX)
            acc = s.id
        contributions[vid] = [acc]
        return acc

    for instr in reversed(forward_instrs):
        produces_loss = loss in instr.outputs
        before = len(program.instructions)
        gouts = [total_grad(o) for o in instr.outputs]
        if not produces_loss and all(g is None for g in gouts):
            continue  # no gradient flows through this instruction
        rule = _GRAD_RULES.get(instr.op)
        if rule is None:
            raise NotImplementedError(f"no gradient rule for op {instr.op!r}")
        gins = rule(program, instr, gouts)
        if len(gins) != len(instr.inputs):
            raise AssertionError(
                f"grad rule for {instr.op} returned {len(gins)} grads "
                f"for {len(instr.inputs)} inputs"
            )
        stamp(before, instr.attrs.get("layer"))
        for vin, g in zip(instr.inputs, gins):
            if g is not None:
                contributions.setdefault(vin, []).append(g)

    # Re-point param grads at their fully accumulated versions (a param used
    # in several places, e.g. a tied embedding, accumulates here).
    for pid in program.params:
        contribs = contributions.get(pid)
        before = len(program.instructions)
        g = total_grad(pid)
        if g is not None:
            stamp(before, value_layer.get(contribs[0]))
            program.grads[pid] = g


def insert_gradient_sync(program: Program, local_params: set[int]) -> None:
    """Insert all-reduce of every data-parallel parameter gradient.

    Expert parameters (in ``local_params``) are sharded across devices
    (expert parallelism) and must *not* be all-reduced.  Each all-reduce is
    placed immediately after the instruction producing the gradient,
    mirroring bucketed DDP issuing collectives as gradients become ready.
    """
    grad_to_param = {g: pa for pa, g in program.grads.items()}
    new_instrs: list[Instruction] = []
    replaced: dict[int, int] = {}
    for instr in program.instructions:
        new_instrs.append(instr)
        for out in instr.outputs:
            pa = grad_to_param.get(out)
            if pa is None or pa in local_params:
                continue
            (synced,) = program.add("allreduce", [out], kind=InstrKind.COMM)
            sync_instr = program.instructions.pop()
            if "layer" in instr.attrs:  # sync rides with its grad producer
                sync_instr.attrs.setdefault("layer", instr.attrs["layer"])
            new_instrs.append(sync_instr)
            replaced[out] = synced.id
            program.grads[pa] = synced.id
    program.instructions = new_instrs
    # later consumers of the raw grad (only the optimizer, inserted after
    # this pass) will use program.grads, which now points at synced values.


def insert_sgd(program: Program, lr: float = 0.01, momentum: float = 0.9) -> None:
    """Append SGD-with-momentum update instructions for every parameter."""
    # each update rides with the block that consumes its parameter, so the
    # pipeline stage-partitioner keeps optimizer state stage-local
    params = set(program.params)
    param_layer: dict[int, int] = {}
    for instr in program.instructions:
        layer = instr.attrs.get("layer")
        if layer is None:
            continue
        for vin in instr.inputs:
            if vin in params:
                param_layer.setdefault(vin, layer)
    for pid in list(program.params):
        g = program.grads.get(pid)
        if g is None:
            continue
        m = program.add_state(program.type_of(pid), f"mom_{program.values[pid].name}")
        w2, m2 = program.add(
            "sgd_update",
            [pid, g, m.id],
            attrs={"lr": lr, "momentum": momentum},
            kind=InstrKind.OPTIMIZER,
        )
        if pid in param_layer:
            program.instructions[-1].attrs.setdefault("layer", param_layer[pid])
        program.outputs.extend([w2.id, m2.id])
