"""Lancet core: the paper's contribution, as compiler passes over the IR."""

from .cache import LRUCache
from .comm_priority import GradSyncDeferPass
from .cost_model import CommCostModel, CostEstimator
from .dw_schedule import (
    A2AOverlapRecord,
    DWScheduleReport,
    WeightGradSchedulePass,
    legalize_order,
)
from .lancet import LancetOptimizer, LancetReport
from .partition import (
    DPResult,
    InferenceResult,
    LancetHyperParams,
    OperatorPartitionPass,
    PlannerState,
    RangePlan,
    infer_axes,
    pipeline_cost_ms,
    plan_partitions,
    plan_partitions_reference,
)
from .profiler import CachingOpProfiler

__all__ = [
    "A2AOverlapRecord",
    "CachingOpProfiler",
    "CommCostModel",
    "CostEstimator",
    "DPResult",
    "DWScheduleReport",
    "GradSyncDeferPass",
    "InferenceResult",
    "LRUCache",
    "LancetHyperParams",
    "LancetOptimizer",
    "LancetReport",
    "OperatorPartitionPass",
    "PlannerState",
    "RangePlan",
    "WeightGradSchedulePass",
    "infer_axes",
    "legalize_order",
    "pipeline_cost_ms",
    "plan_partitions",
    "plan_partitions_reference",
]
