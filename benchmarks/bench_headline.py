"""Headline claims of the abstract: up to 77% less non-overlapped
communication and up to 1.3x end-to-end speedup -- plus the plan-artifact
guarantee: a PlanStore warm load skips the planner entirely and is at
least 50x faster than a cold compile of the same scenario."""

from conftest import run_figure
from repro.bench.figures import headline


def test_headline_claims(benchmark):
    result = run_figure(benchmark, headline.run)
    assert result.notes["max_comm_reduction_pct"] > 55.0
    assert 1.15 < result.notes["max_speedup"] < 1.6

    # plan artifact story (ISSUE 5 acceptance): the warm load came from
    # the store (zero planner cost evaluations), reproduced the cold
    # plan's prediction bit-for-bit, and was >= 50x faster
    assert result.notes["plan_warm_from_store"] is True
    assert result.notes["plan_warm_cost_evals"] == 0
    assert result.notes["plan_warm_predicted_delta_ms"] == 0.0
    assert result.notes["plan_store_speedup"] >= 50.0
