"""Expert-capacity bookkeeping.

The expert capacity ``C`` bounds how many tokens each expert may receive
from one device per step (paper Sec. 2.1): excess tokens are dropped,
under-full slots are zero-padded so tensor shapes stay static.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


def expert_capacity(
    tokens: int, num_experts: int, capacity_factor: float = 1.25, k: int = 1
) -> int:
    """Per-expert, per-device capacity: ``ceil(cf * k * tokens / E)``."""
    if tokens <= 0 or num_experts <= 0:
        raise ValueError("tokens and num_experts must be positive")
    return max(1, math.ceil(capacity_factor * k * tokens / num_experts))


@dataclass
class CapacityState:
    """Per-expert used-capacity counters threaded between batch chunks.

    This is the state the paper's special gating operators pass between
    partitions (Fig. 5c): after chunk ``p`` uses some capacity, chunk
    ``p+1`` starts from these counts, so the union of chunk routings is
    token-for-token identical to routing the whole batch at once.
    """

    num_experts: int
    capacity: int
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.counts is None:
            self.counts = np.zeros(self.num_experts, dtype=np.int64)
        else:
            self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.counts.shape != (self.num_experts,):
            raise ValueError("counts must have shape (num_experts,)")

    def remaining(self) -> np.ndarray:
        """Free slots per expert."""
        return np.maximum(self.capacity - self.counts, 0)

    def advanced(self, new_counts: np.ndarray) -> "CapacityState":
        """State after a chunk consumed capacity up to ``new_counts``."""
        return CapacityState(self.num_experts, self.capacity, new_counts)

    def copy(self) -> "CapacityState":
        return CapacityState(self.num_experts, self.capacity, self.counts.copy())
