"""Fig. 12: iteration time with the Batch Prioritized gate.

Same grid as Fig. 11 but with BPR routing (RAF / Tutel / Lancet).  BPR
restricts partitioning to ops after the MoE layer (Fig. 4c), yet the
paper finds the achieved speedup similar to the Switch gate.
"""

from conftest import run_figure
from repro.bench.figures import fig11


def test_fig12_bpr_gate(benchmark):
    result = run_figure(benchmark, fig11.run, gate="bpr")
    for row in result.rows:
        if row["framework"] == "lancet":
            assert row["speedup_vs_best_baseline"] > 1.0
    assert result.notes["max_speedup"] > 1.1
    # dW scheduling is unaffected by the gate, so BPR speedups stay in
    # the same band as Switch (paper: 1.17x-1.24x average/max)
    assert result.notes["avg_speedup"] > 1.08
