"""PlanStore edge cases: races, eviction, corruption, staleness.

The store is the shared substrate of the serving layer: several server
workers (threads) and several fleet processes write one directory.
These tests pin the behaviors that make that safe -- atomic entry
writes, locked index updates, bounded eviction that prunes its indexes,
corrupt-entry degradation, and the content-fingerprint memory cache
that stays correct even when an external writer lands within the
filesystem's mtime granularity.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.api import (
    PlanError,
    PlanStore,
    Scenario,
    compile,
    signature_bucket,
)

SC = Scenario.preset("tiny/a100x8")


@pytest.fixture(scope="module")
def plans():
    """Three compiled plans of one base identity, distinct signature
    buckets (routing seeds)."""
    return tuple(
        compile(SC.with_(routing_seed=seed)) for seed in (1, 5, 9)
    )


def _get(store, plan):
    return store.get(
        plan.fingerprint,
        plan.cluster,
        plan.policy,
        plan.framework,
        plan.signatures,
    )


class TestConcurrentWriters:
    def test_writers_racing_one_key(self, tmp_path, plans):
        """Many store instances hammering the same entry concurrently
        must leave exactly one readable entry and a consistent index."""
        plan = plans[0]
        barrier = threading.Barrier(8)
        errors = []

        def writer():
            try:
                # separate instance per thread: separate memory caches,
                # shared directory -- the cross-process topology
                mine = PlanStore(tmp_path)
                barrier.wait()
                for _ in range(5):
                    mine.put(plan)
            except Exception as err:  # pragma: no cover - failure path
                errors.append(err)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        store = PlanStore(tmp_path)
        assert len(store) == 1
        loaded = _get(store, plan)
        assert loaded is not None
        assert loaded.program.instructions  # decodes cleanly
        family = store.neighbors(
            plan.fingerprint, plan.cluster, plan.policy, plan.framework
        )
        assert len(family) == 1

    def test_concurrent_writers_distinct_keys_keep_all_entries(
        self, tmp_path, plans
    ):
        def writer(plan):
            PlanStore(tmp_path).put(plan)

        threads = [
            threading.Thread(target=writer, args=(p,)) for p in plans
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        store = PlanStore(tmp_path)
        assert len(store) == 3
        # the locked index updates must not lose each other's buckets
        family = store.neighbors(
            plans[0].fingerprint,
            plans[0].cluster,
            plans[0].policy,
            plans[0].framework,
        )
        assert len(family) == 3


class TestEviction:
    def test_max_entries_evicts_lru_and_prunes_indexes(
        self, tmp_path, plans
    ):
        store = PlanStore(tmp_path, max_entries=2)
        paths = [store.put(p) for p in plans]
        assert len(store) == 2
        assert store.stats["evictions"] == 1
        # oldest-used entry went; the latest put is protected
        assert not paths[0].exists()
        assert _get(store, plans[0]) is None
        assert _get(store, plans[2]) is not None
        # no index entry may point at the evicted file
        live = {p.name for p in store.entries()}
        for family in store._read_signature_index().values():
            for key in family:
                assert f"{key[:32]}.plan.json" in live

    def test_get_refreshes_lru_order(self, tmp_path, plans):
        store = PlanStore(tmp_path, max_entries=2)
        store.put(plans[0])
        store.put(plans[1])
        # using entry 0 makes entry 1 the eviction candidate
        assert _get(store, plans[0]) is not None
        store.put(plans[2])
        assert _get(store, plans[0]) is not None
        assert _get(store, plans[1]) is None

    def test_max_bytes_pressure_keeps_only_newest(self, tmp_path, plans):
        store = PlanStore(tmp_path, max_bytes=1)
        for plan in plans:
            store.put(plan)
            # over budget, but the entry just written is protected
            assert len(store) == 1
        assert store.stats["evictions"] == 2
        assert _get(store, plans[2]) is not None

    def test_bounds_validated(self, tmp_path):
        with pytest.raises(ValueError):
            PlanStore(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            PlanStore(tmp_path, max_bytes=0)


class TestCorruption:
    def test_corrupt_entry_raises_plan_error(self, tmp_path, plans):
        store = PlanStore(tmp_path)
        path = store.put(plans[0])
        path.write_text("{ this is not json")
        with pytest.raises(PlanError, match="corrupt"):
            _get(store, plans[0])

    def test_compile_degrades_to_replan_and_heals_entry(
        self, tmp_path, plans
    ):
        store = PlanStore(tmp_path)
        scenario = SC.with_(routing_seed=1)
        path = store.put(plans[0])
        path.write_text("{ this is not json")
        with pytest.warns(UserWarning, match="re-planning"):
            plan = compile(scenario, store=store)
        assert plan.predicted_iteration_ms == pytest.approx(
            plans[0].predicted_iteration_ms
        )
        # the fresh put replaced the corrupt entry: next get is clean
        healed = _get(store, plans[0])
        assert healed is not None
        assert healed.from_store


class TestPlacementKeys:
    def test_keys_distinguish_plans_differing_only_in_placement(
        self, tmp_path, plans
    ):
        """Two plans identical in every respect except their expert
        placement must land on distinct store entries -- and the
        placement-free key must stay byte-identical to what a
        pre-placement store would compute (old entries keep resolving)."""
        from repro.api.plan import Plan
        from repro.placement import ExpertPlacement

        base = plans[0]
        placement = ExpertPlacement(
            16,
            8,
            tuple(((e % 8, 1.0),) for e in range(16)),  # scrambled layout
        )
        placed = Plan(
            cluster=base.cluster,
            policy=base.policy,
            fingerprint=base.fingerprint,
            predicted_iteration_ms=base.predicted_iteration_ms,
            program=base.program,
            signatures=base.signatures,
            placement=placement,
        )
        store = PlanStore(tmp_path)
        args = (base.fingerprint, base.cluster, base.policy, base.framework)
        assert store.key_for(
            *args, base.signatures
        ) != store.key_for(*args, base.signatures, placed.placement)
        assert store.base_key_for(*args) != store.base_key_for(
            *args, placed.placement
        )

        store.put(base)
        store.put(placed)
        assert len(store) == 2  # no collision
        unplaced_hit = store.get(*args, base.signatures)
        placed_hit = store.get(*args, base.signatures, placed.placement)
        assert unplaced_hit is not None and unplaced_hit.placement is None
        assert placed_hit is not None
        assert placed_hit.placement == {None: placement}


class TestMemoryCacheStaleness:
    def test_unchanged_content_is_served_from_memory(self, tmp_path, plans):
        store = PlanStore(tmp_path)
        store.put(plans[0])
        first = _get(store, plans[0])
        second = _get(store, plans[0])
        assert second is first  # one decode, not two
        assert store.stats["memory_hits"] == 1

    def test_external_overwrite_within_mtime_granularity_is_detected(
        self, tmp_path, plans
    ):
        """An external writer replacing an entry without advancing its
        mtime (same-timestamp rename -- the hot-swap race) must still
        invalidate the memory cache: validation is by content digest."""
        a, b = plans[0], plans[1]
        store = PlanStore(tmp_path)
        path = store.put(a)
        cached = _get(store, a)
        assert signature_bucket(cached.signatures) == signature_bucket(
            a.signatures
        )
        assert _get(store, a) is cached  # memory cache is warm now
        assert store.stats["memory_hits"] == 1

        stat = path.stat()
        b.save(path)  # external overwrite, same path = same store key
        # force the overwrite back to the original timestamps, which is
        # what a coarse-mtime filesystem would report anyway
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))

        reloaded = store._load(
            store.key_for(
                a.fingerprint, a.cluster, a.policy, a.framework, a.signatures
            )
        )
        assert signature_bucket(reloaded.signatures) == signature_bucket(
            b.signatures
        )
        assert store.stats["memory_hits"] == 1  # no stale second hit

    def test_put_invalidates_memory_for_that_key(self, tmp_path, plans):
        store = PlanStore(tmp_path)
        store.put(plans[0])
        first = _get(store, plans[0])
        store.put(plans[0])  # re-publish (e.g. a hot swap)
        second = _get(store, plans[0])
        assert second is not first  # re-read, not the stale object
