"""Fig. 16: ablation of the two passes on 4 nodes.

Full Lancet must beat either pass alone; the paper finds GPT2-L-MoE is
hurt more by removing the dW schedule (higher partition overheads make
backward overlap relatively more valuable).
"""

from conftest import run_figure
from repro.bench.figures import fig16


def test_fig16_ablation(benchmark):
    result = run_figure(benchmark, fig16.run)
    # full >= each pass alone (up to comm-stream contention tolerance)
    assert result.notes["full_beats_each_alone"]

    def sp(cluster, model, ablation):
        return next(
            r["speedup_vs_raf"]
            for r in result.rows
            if (r["cluster"], r["model"], r["ablation"]) == (cluster, model, ablation)
        )

    for cluster in ("v100", "a100"):
        for model in ("GPT2-S-MoE", "GPT2-L-MoE"):
            assert sp(cluster, model, "baseline") == 1.0
            assert sp(cluster, model, "-dW Schedule") > 1.0
            assert sp(cluster, model, "-Pipeline") > 1.0
            assert sp(cluster, model, "full") > 1.05
            # each single pass is worse than full by a visible margin on
            # at least one axis -- both passes contribute
    avgs = {
        abl: sum(
            sp(c, m, abl)
            for c in ("v100", "a100")
            for m in ("GPT2-S-MoE", "GPT2-L-MoE")
        )
        / 4.0
        for abl in ("-dW Schedule", "-Pipeline", "full")
    }
    assert avgs["full"] > avgs["-dW Schedule"]
    assert avgs["full"] > avgs["-Pipeline"]
