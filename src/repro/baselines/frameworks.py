"""Framework schedule builders used by the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import LancetHyperParams, LancetOptimizer
from ..core.partition import RangePlan, apply_plans, infer_axes
from ..ir import Program
from ..models.gpt2_moe import ModelGraph
from ..runtime import (
    COMPILED,
    DEEPSPEED,
    TUTEL,
    ClusterSpec,
    FrameworkProfile,
    SimulationConfig,
    SyntheticRoutingModel,
    simulate_program,
)


@dataclass
class BaselineResult:
    """A prepared schedule plus metadata for the harness."""

    name: str
    program: Program
    profile: FrameworkProfile
    #: whether this framework transmits full padded buffers in A2A
    padded_a2a: bool
    info: dict = field(default_factory=dict)


class Framework:
    """Base interface: turn a model graph into an executable schedule."""

    name: str = "base"
    profile: FrameworkProfile = COMPILED
    padded_a2a: bool = True

    def prepare(self, graph: ModelGraph, cluster: ClusterSpec) -> BaselineResult:
        raise NotImplementedError


class DeepSpeedBaseline(Framework):
    """Eager stack, slow dispatch kernels, no overlap (paper: DeepSpeed
    0.5.8 without Tutel kernels)."""

    name = "deepspeed"
    profile = DEEPSPEED

    def prepare(self, graph: ModelGraph, cluster: ClusterSpec) -> BaselineResult:
        return BaselineResult(self.name, graph.program, self.profile, True)


class RAFBaseline(Framework):
    """Compiler stack, unmodified schedule (RAF without Lancet passes)."""

    name = "raf"
    profile = COMPILED

    def prepare(self, graph: ModelGraph, cluster: ClusterSpec) -> BaselineResult:
        return BaselineResult(self.name, graph.program, self.profile, True)


class TutelBaseline(Framework):
    """Capacity-dim overlap of all-to-all and experts (paper Sec. 2.2).

    For each run the overlap degree is searched over {1, 2, 4, 8} by
    simulating one iteration per degree and keeping the fastest -- the
    paper's exact methodology for Tutel numbers.
    """

    name = "tutel"
    profile = TUTEL
    degrees = (1, 2, 4, 8)

    def _partitioned(self, graph: ModelGraph, degree: int) -> Program | None:
        program = graph.program.clone()
        if degree == 1:
            return program
        pos = program.instr_index()
        plans: list[RangePlan] = []
        for ml in graph.moe_layers:
            start = pos[ml.a2a_first_uid]
            end = pos[ml.a2a_second_uid] + 1
            instrs = program.instructions[start:end]
            axes = infer_axes(instrs, program)
            if axes is None:
                return None
            capacity = program.type_of(instrs[0].inputs[0]).shape[1]
            if degree > capacity:
                return None
            plans.append(
                RangePlan(
                    start=start, end=end, parts=degree, axes=axes,
                    predicted_ms=0.0, sequential_ms=0.0,
                )
            )
        apply_plans(program, plans)
        return program

    def prepare(self, graph: ModelGraph, cluster: ClusterSpec) -> BaselineResult:
        best: tuple[float, int, Program] | None = None
        for degree in self.degrees:
            program = self._partitioned(graph, degree)
            if program is None:
                continue
            config = SimulationConfig(
                cluster=cluster,
                framework=self.profile,
                padded_a2a=True,
                routing=SyntheticRoutingModel(seed=0),
            )
            t = simulate_program(program, config=config).makespan
            if best is None or t < best[0]:
                best = (t, degree, program)
        assert best is not None
        t, degree, program = best
        return BaselineResult(
            self.name, program, self.profile, True, info={"degree": degree}
        )


class LancetFramework(Framework):
    """RAF + Lancet's two passes + irregular all-to-all."""

    name = "lancet"
    profile = COMPILED
    padded_a2a = False

    def __init__(
        self,
        hyper_params: LancetHyperParams | None = None,
        enable_dw_schedule: bool = True,
        enable_partition: bool = True,
    ) -> None:
        self.hyper_params = hyper_params
        self.enable_dw_schedule = enable_dw_schedule
        self.enable_partition = enable_partition

    def prepare(self, graph: ModelGraph, cluster: ClusterSpec) -> BaselineResult:
        opt = LancetOptimizer(
            cluster,
            framework=self.profile,
            hyper_params=self.hyper_params,
            enable_dw_schedule=self.enable_dw_schedule,
            enable_partition=self.enable_partition,
        )
        program, report = opt.optimize(graph)
        return BaselineResult(
            self.name,
            program,
            self.profile,
            padded_a2a=False,
            info={
                "report": report,
                "optimization_seconds": report.optimization_seconds,
                "predicted_ms": report.predicted_iteration_ms,
            },
        )


def make_framework(name: str, **kwargs) -> Framework:
    """Factory by paper name: deepspeed / raf / tutel / lancet."""
    table = {
        "deepspeed": DeepSpeedBaseline,
        "raf": RAFBaseline,
        "tutel": TutelBaseline,
        "lancet": LancetFramework,
    }
    try:
        cls = table[name.lower()]
    except KeyError:
        raise ValueError(f"unknown framework {name!r}") from None
    return cls(**kwargs) if name.lower() == "lancet" else cls()
