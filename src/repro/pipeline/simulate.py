"""Staged simulation: compose per-stage cluster simulations with p2p
dependencies into one pipeline-level figure.

Per-stage job durations come from the existing device-resolved simulator
(:func:`~repro.runtime.simulate_cluster` on the stage's subgroup cluster,
so hot-expert all-to-all skew prices exactly as in flat runs); the
pipeline layer then schedules microbatch jobs in each stage's fixed order
with activation p2p edges between stages, and renders the result as a
:class:`~repro.runtime.ClusterTimeline` over the *base* cluster's devices.

Steady-state approximation: all microbatches of a stage share one routing
realization (the per-layer-key draw cache), so every F job of a stage has
the same duration -- the same assumption the flat planner makes for one
iteration.

All bookkeeping is float64 ``max`` and single adds, so the scan scheduler
here is bit-identical to the naive event-replay reference
(:func:`~repro.pipeline.reference.replay_reference`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import Stream
from ..runtime.device import COMPILED
from ..runtime.simulate import SimulationConfig, simulate_cluster
from ..runtime.timeline import ClusterTimeline, Interval, Timeline
from .p2p import P2PCostModel
from .partition import SplitProgram
from .schedule import Job, schedule_order
from .stage import StagedCluster


@dataclass(frozen=True)
class StageCosts:
    """Everything the pipeline scheduler needs: per-stage job durations
    and per-boundary p2p latencies, all in modeled milliseconds."""

    forward_ms: tuple[float, ...]
    backward_ms: tuple[float, ...]
    tail_ms: tuple[float, ...]
    fwd_p2p_ms: tuple[float, ...]  # len S-1
    bwd_p2p_ms: tuple[float, ...]  # len S-1

    @property
    def num_stages(self) -> int:
        return len(self.forward_ms)


def stage_costs(
    split: SplitProgram,
    framework=COMPILED,
    routing=None,
    padded_a2a: bool = True,
    block_sparse_experts: bool = False,
) -> StageCosts:
    """Measure per-stage segment makespans on their subgroup clusters.

    One shared routing model instance across all segments keeps each MoE
    layer's forward and backward all-to-all on the same realized draw
    (the per-layer-key cache), exactly like a flat simulation.
    """
    staged = split.staged
    fwd, bwd, tail = [], [], []
    for stage in staged.stages:
        kwargs = dict(
            cluster=stage.cluster,
            framework=framework,
            padded_a2a=padded_a2a,
            block_sparse_experts=block_sparse_experts,
        )
        if routing is not None:
            kwargs["routing"] = routing
        config = SimulationConfig(**kwargs)
        times = []
        for phase in ("forward", "backward", "tail"):
            seg = split.segment(stage.index, phase).program
            if seg.instructions:
                times.append(simulate_cluster(seg, config=config).makespan)
            else:
                times.append(0.0)
        fwd.append(times[0])
        bwd.append(times[1])
        tail.append(times[2])
    p2p = P2PCostModel(staged.base)
    return StageCosts(
        forward_ms=tuple(fwd),
        backward_ms=tuple(bwd),
        tail_ms=tuple(tail),
        fwd_p2p_ms=p2p.boundary_times_ms(
            staged, list(split.fwd_boundary_bytes)
        ),
        bwd_p2p_ms=p2p.boundary_times_ms(
            staged, list(split.bwd_boundary_bytes)
        ),
    )


def _dep_time(
    job: Job, done: dict[tuple[str, int, int], float], costs: StageCosts
) -> float | None:
    """Earliest data-ready time of a job, or ``None`` if a dependency has
    not completed yet.  The exact max/add expressions here define the
    bit-level contract shared with the event-replay reference."""
    s, m = job.stage, job.microbatch
    last = costs.num_stages - 1
    if job.kind == "F":
        if s == 0:
            return 0.0
        t = done.get(("F", s - 1, m))
        if t is None:
            return None
        return t + costs.fwd_p2p_ms[s - 1]
    tf = done.get(("F", s, m))
    if tf is None:
        return None
    if s == last:
        return tf
    tb = done.get(("B", s + 1, m))
    if tb is None:
        return None
    return max(tf, tb + costs.bwd_p2p_ms[s])


def schedule_jobs(
    costs: StageCosts, orders: list[list[Job]]
) -> dict[tuple[str, int, int], tuple[float, float]]:
    """Fixed-point scan scheduler: per-stage in-order job execution with
    cross-stage p2p dependencies.  Returns ``job.key -> (start, end)``.

    Each sweep schedules every stage's ready head jobs; a sweep with no
    progress means the schedule deadlocks (an invalid job order)."""
    num = costs.num_stages
    if len(orders) != num:
        raise ValueError(f"{len(orders)} job orders for {num} stages")
    done: dict[tuple[str, int, int], float] = {}
    times: dict[tuple[str, int, int], tuple[float, float]] = {}
    free = [0.0] * num
    heads = [0] * num
    remaining = sum(len(o) for o in orders)
    while remaining:
        progressed = False
        for s in range(num):
            while heads[s] < len(orders[s]):
                job = orders[s][heads[s]]
                dep = _dep_time(job, done, costs)
                if dep is None:
                    break
                start = max(free[s], dep)
                dur = (
                    costs.forward_ms[s]
                    if job.kind == "F"
                    else costs.backward_ms[s]
                )
                end = start + dur
                times[job.key] = (start, end)
                done[job.key] = end
                free[s] = end
                heads[s] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            stuck = [
                orders[s][heads[s]]
                for s in range(num)
                if heads[s] < len(orders[s])
            ]
            raise RuntimeError(
                f"pipeline schedule deadlocked; blocked heads: {stuck}"
            )
    return times


@dataclass
class StagedSimulation:
    """Result of one staged pipeline simulation."""

    staged: StagedCluster
    costs: StageCosts
    schedule: str
    microbatches: int
    #: ``(kind, stage, microbatch) -> (start_ms, end_ms)``
    job_times: dict[tuple[str, int, int], tuple[float, float]]
    #: per-stage (tail_start, tail_end) after the last microbatch job
    tail_times: tuple[tuple[float, float], ...]
    timeline: ClusterTimeline = field(repr=False)

    @property
    def makespan(self) -> float:
        return self.timeline.makespan


def simulate_staged(
    split: SplitProgram,
    microbatches: int,
    schedule: str = "1f1b",
    costs: StageCosts | None = None,
    framework=COMPILED,
    routing=None,
    padded_a2a: bool = True,
    block_sparse_experts: bool = False,
) -> StagedSimulation:
    """Simulate a full pipelined iteration of a split program.

    ``M`` microbatch F/B jobs per stage under the named schedule, then
    each stage's once-per-iteration tail (gradient sync + optimizer).
    Pass precomputed ``costs`` to reuse segment measurements across
    schedules (the ablation switch compares on identical costs).
    """
    staged = split.staged
    if costs is None:
        costs = stage_costs(
            split,
            framework=framework,
            routing=routing,
            padded_a2a=padded_a2a,
            block_sparse_experts=block_sparse_experts,
        )
    orders = schedule_order(schedule, staged.num_stages, microbatches)
    job_times = schedule_jobs(costs, orders)

    tails = []
    for s in range(staged.num_stages):
        last_end = job_times[orders[s][-1].key][1] if orders[s] else 0.0
        tails.append((last_end, last_end + costs.tail_ms[s]))

    timeline = _render_timeline(staged, costs, orders, job_times, tails)
    return StagedSimulation(
        staged=staged,
        costs=costs,
        schedule=schedule,
        microbatches=microbatches,
        job_times=job_times,
        tail_times=tuple(tails),
        timeline=timeline,
    )


def _render_timeline(
    staged: StagedCluster,
    costs: StageCosts,
    orders: list[list[Job]],
    job_times: dict,
    tails: list[tuple[float, float]],
) -> ClusterTimeline:
    """Render job times as a ClusterTimeline over the base cluster.

    Every device of a stage's subgroup carries the stage's job intervals
    on its compute stream; outbound activation transfers appear on the
    comm stream (pure latency edges -- they never gate the sender, so the
    makespan is exactly the job/tail fixed point)."""
    device_timelines = []
    uid = 0
    for stage in staged.stages:
        intervals: list[Interval] = []
        s = stage.index
        for job in orders[s]:
            start, end = job_times[job.key]
            intervals.append(
                Interval(
                    uid=uid,
                    op=f"pipeline_{'fwd' if job.kind == 'F' else 'bwd'}",
                    kind="forward" if job.kind == "F" else "dx",
                    stream=Stream.COMPUTE,
                    start=start,
                    end=end,
                )
            )
            uid += 1
            # outbound p2p edge for this job, if any
            if job.kind == "F" and s < staged.num_stages - 1:
                p2p = costs.fwd_p2p_ms[s]
            elif job.kind == "B" and s > 0:
                p2p = costs.bwd_p2p_ms[s - 1]
            else:
                p2p = None
            if p2p is not None and p2p > 0.0:
                intervals.append(
                    Interval(
                        uid=uid,
                        op="p2p",
                        kind="comm",
                        stream=Stream.COMM,
                        start=end,
                        end=end + p2p,
                    )
                )
                uid += 1
        t_start, t_end = tails[s]
        if t_end > t_start:
            intervals.append(
                Interval(
                    uid=uid,
                    op="pipeline_tail",
                    kind="optimizer",
                    stream=Stream.COMPUTE,
                    start=t_start,
                    end=t_end,
                )
            )
            uid += 1
        for _ in stage.devices:
            device_timelines.append(Timeline(list(intervals)))
    return ClusterTimeline(device_timelines)
