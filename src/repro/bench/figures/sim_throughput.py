"""Simulator throughput: scalar per-scenario loop vs vectorized batch.

Not a paper figure -- infrastructure validation for the batch simulation
core (:mod:`~repro.runtime.batch`).  The planner's warm re-plan path and
the scenario-sweep figures evaluate *many* routing / straggler scenarios
against one fixed program; this experiment measures exactly that shape:
``B`` scenarios of one Lancet-optimized program, simulated once through
the retained scalar loop (:func:`~repro.runtime.simulate
.simulate_cluster` per scenario) and once through the vectorized batch
pass (:func:`~repro.runtime.simulate.simulate_cluster_batch`).

Both paths run against the *same* pre-warmed cost models -- the warm
re-plan regime, where durations are cached and the Python event loop is
the cost -- so the ratio isolates the simulation engine itself.  Every
run also checks the two paths interval-for-interval: the batch engine
must be bit-identical to the scalar reference, not merely close.
"""

from __future__ import annotations

import time

from ...core import LancetOptimizer
from ...runtime import (
    ClusterSpec,
    GroundTruthCost,
    SimulationConfig,
    SyntheticRoutingModel,
    UniformRoutingModel,
    simulate_cluster,
    simulate_cluster_batch,
)
from ..formatting import format_table
from ..harness import model_by_name, paper_batch
from .common import FigureResult


def scenario_costs(
    cluster: ClusterSpec, framework, num_scenarios: int, seed: int
) -> list[GroundTruthCost]:
    """``B`` routing / straggler scenarios against one program.

    Mirrors what a drift-driven re-planning loop sweeps: the uniform
    approximation, a family of skewed routing realizations, and a
    straggler pattern.
    """
    scenarios: list[SimulationConfig] = []

    def cfg(**over) -> SimulationConfig:
        return SimulationConfig(
            cluster=cluster, framework=framework, padded_a2a=False, **over
        )

    scenarios.append(cfg(routing=UniformRoutingModel()))
    scenarios.append(
        cfg(
            routing=UniformRoutingModel(),
            straggler_slowdown={0: 1.0 / 0.7},
        )
    )
    k = 0
    while len(scenarios) < num_scenarios:
        k += 1
        scenarios.append(
            cfg(
                routing=SyntheticRoutingModel(
                    seed=seed + k,
                    concentration=0.5 if k % 2 else 2.0,
                    hot_experts=k % 3,
                    hot_boost=0.15 * (k % 4),
                )
            )
        )
    return [GroundTruthCost(c) for c in scenarios[:num_scenarios]]


def _bit_identical(program, costs, batch_result) -> bool:
    """Interval-for-interval comparison of both simulation paths."""
    for b, cost in enumerate(costs):
        scalar = simulate_cluster(program, cost=cost)
        batch = batch_result.timeline(b)
        for dev_s, dev_b in zip(scalar.devices, batch.devices):
            if dev_s.intervals != dev_b.intervals:
                return False
    return True


def run(
    model: str = "GPT2-S-MoE",
    cluster_kind: str = "a100",
    num_gpus: int = 16,
    num_layers: int | None = 4,
    num_scenarios: int = 16,
    rounds: int = 3,
    seed: int = 1,
) -> FigureResult:
    """Time scalar vs batch simulation of ``B`` scenarios (best-of-N)."""
    import dataclasses

    from ...models import build_training_graph

    cfg = model_by_name(model)
    if num_layers is not None:
        cfg = dataclasses.replace(cfg, num_layers=num_layers)
    batch = paper_batch(cluster_kind, model)
    graph = build_training_graph(cfg, batch=batch, seq=512, num_gpus=num_gpus)
    cluster = ClusterSpec.for_gpus(cluster_kind, num_gpus)

    opt = LancetOptimizer(cluster)
    program, _report = opt.optimize(graph)

    costs = scenario_costs(cluster, opt.framework, num_scenarios, seed)

    # warm every cost model once (routing draws + duration caches) so the
    # timed comparison is the warm re-plan regime for both paths
    for cost in costs:
        simulate_cluster(program, cost=cost)
    batch_result = simulate_cluster_batch(program, costs=costs)
    bit_identical = _bit_identical(program, costs, batch_result)

    scalar_s = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        scalar_makespans = [
            simulate_cluster(program, cost=cost).makespan for cost in costs
        ]
        scalar_s = min(scalar_s, time.perf_counter() - t0)

    batch_s = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        batch_makespans = simulate_cluster_batch(
            program, costs=costs
        ).makespans
        batch_s = min(batch_s, time.perf_counter() - t0)

    makespans_equal = scalar_makespans == [float(m) for m in batch_makespans]
    b = len(costs)
    speedup = scalar_s / batch_s if batch_s > 0 else float("inf")
    rows = [
        {
            "model": model,
            "gpus": num_gpus,
            "instructions": len(program.instructions),
            "scenarios": b,
            "scalar_ms": scalar_s * 1e3,
            "batch_ms": batch_s * 1e3,
            "scalar_sims_per_s": b / scalar_s,
            "batch_sims_per_s": b / batch_s,
            "speedup": speedup,
            "bit_identical": bit_identical,
            "makespans_equal": makespans_equal,
        }
    ]

    table = format_table(
        [
            "Model",
            "GPUs",
            "Instrs",
            "Scenarios",
            "Scalar ms",
            "Batch ms",
            "Scalar sims/s",
            "Batch sims/s",
            "Speedup",
            "Identical",
        ],
        [
            [
                r["model"],
                r["gpus"],
                r["instructions"],
                r["scenarios"],
                round(r["scalar_ms"], 2),
                round(r["batch_ms"], 2),
                round(r["scalar_sims_per_s"], 1),
                round(r["batch_sims_per_s"], 1),
                round(r["speedup"], 1),
                r["bit_identical"] and r["makespans_equal"],
            ]
            for r in rows
        ],
        title=f"Simulator throughput: scalar loop vs vectorized batch "
        f"({model}, {cluster_kind}, {num_gpus} GPUs, B={b})",
    )
    mean_makespan = float(sum(scalar_makespans) / len(scalar_makespans))
    notes = {
        "bit_identical": bit_identical,
        "makespans_equal": makespans_equal,
        "speedup": speedup,
        "batch_sims_per_s": b / batch_s,
        # lower-is-better gates for check_regression.py: the time ratio
        # is wall-time based but machine-normalized (both paths run on
        # the same interpreter, same warm caches); the mean makespan is
        # a deterministic simulated quantity guarding semantic drift.
        "regression_metrics": {
            "batch_over_scalar_time_ratio": batch_s / scalar_s,
            "mean_scenario_makespan_ms": mean_makespan,
        },
    }
    return FigureResult(
        "sim_throughput",
        "scalar per-scenario loop vs vectorized batch simulation",
        rows,
        table,
        notes,
    )
