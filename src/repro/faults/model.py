"""Declarative fault model: what breaks, when, and how badly.

A :class:`FaultSpec` describes one fault; a :class:`FaultSchedule` is an
ordered collection of them with step-indexed activation windows.  The
schedule is pure data (JSON round-trippable, hashable) -- deriving the
degraded cluster it implies is the job of
:class:`~repro.faults.injector.FaultInjector`.

Three fault kinds cover the failure modes that move a plan's timing
assumptions (ISSUE 8 / MoNTA's worst-path argument):

- ``straggler``: a persistent compute slowdown of one device (thermal
  throttling, a sick HBM stack, a noisy neighbour).  ``severity`` is the
  compute-time multiplier (>= 1).
- ``nic_degrade``: one node's NIC bandwidth drops to ``severity`` (a
  fraction in (0, 1]) of nominal.  Because every inter-node byte of the
  2-hop exchange crosses some node's NIC and the collective completes
  with the *worst* path, the whole cluster's effective inter-node
  bandwidth degrades to the worst node's.
- ``rank_loss``: a device drops out entirely.  Its data shard and its
  experts are taken over by a surviving *buddy* rank (same node when
  possible), which then carries double compute and the folded traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: the fault kinds the injector knows how to apply
FAULT_KINDS = ("straggler", "nic_degrade", "rank_loss")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a kind, a target, a severity, and an activation window.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    target:
        Device rank (``straggler``, ``rank_loss``) or node index
        (``nic_degrade``).
    severity:
        ``straggler``: compute-time multiplier, >= 1 (2.0 = half speed).
        ``nic_degrade``: remaining bandwidth fraction in (0, 1]
        (0.5 = half the NIC).  Ignored for ``rank_loss``.
    start_step / end_step:
        Half-open activation window ``[start_step, end_step)``;
        ``end_step=None`` means the fault persists forever.
    """

    kind: str
    target: int
    severity: float = 2.0
    start_step: int = 0
    end_step: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.target < 0:
            raise ValueError(f"fault target must be >= 0, got {self.target}")
        if self.kind == "straggler" and self.severity < 1.0:
            raise ValueError(
                f"straggler severity is a slowdown multiplier >= 1, "
                f"got {self.severity}"
            )
        if self.kind == "nic_degrade" and not 0.0 < self.severity <= 1.0:
            raise ValueError(
                f"nic_degrade severity is a remaining-bandwidth fraction "
                f"in (0, 1], got {self.severity}"
            )
        if self.end_step is not None and self.end_step <= self.start_step:
            raise ValueError(
                f"empty fault window [{self.start_step}, {self.end_step})"
            )

    def active_at(self, step: int) -> bool:
        """True when the fault is live at ``step``."""
        if step < self.start_step:
            return False
        return self.end_step is None or step < self.end_step

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "severity": self.severity,
            "start_step": self.start_step,
            "end_step": self.end_step,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        return cls(
            kind=d["kind"],
            target=int(d["target"]),
            severity=float(d.get("severity", 2.0)),
            start_step=int(d.get("start_step", 0)),
            end_step=None if d.get("end_step") is None else int(d["end_step"]),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of faults over training time.

    ``active_at(step)`` is the contract the injector consumes: the tuple
    of live faults, in schedule order (deterministic, so the derived
    degraded cluster is deterministic too).
    """

    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # accept any iterable but store a hashable tuple
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def active_at(self, step: int) -> tuple[FaultSpec, ...]:
        """The faults live at ``step``, in schedule order."""
        return tuple(f for f in self.faults if f.active_at(step))

    def transition_steps(self) -> tuple[int, ...]:
        """Sorted steps at which the active fault set can change."""
        steps = set()
        for f in self.faults:
            steps.add(f.start_step)
            if f.end_step is not None:
                steps.add(f.end_step)
        return tuple(sorted(steps))

    def to_dict(self) -> dict:
        return {"faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSchedule":
        return cls(tuple(FaultSpec.from_dict(f) for f in d.get("faults", ())))

    @classmethod
    def random(
        cls,
        num_gpus: int,
        gpus_per_node: int,
        *,
        seed: int,
        num_faults: int = 3,
        horizon: int = 50,
        kinds: tuple[str, ...] = FAULT_KINDS,
        max_severity: float = 3.0,
    ) -> "FaultSchedule":
        """A seeded random schedule for chaos testing.

        Deterministic in ``seed``; at least one surviving rank is always
        guaranteed (rank losses are capped at ``num_gpus - 1`` distinct
        ranks).  Windows are drawn inside ``[0, horizon)``; roughly half
        the faults are persistent (no ``end_step``).
        """
        rng = np.random.default_rng(seed)
        num_nodes = max(1, num_gpus // gpus_per_node)
        faults: list[FaultSpec] = []
        lost: set[int] = set()
        for _ in range(num_faults):
            kind = str(rng.choice(list(kinds)))
            start = int(rng.integers(0, max(1, horizon - 1)))
            end: int | None = None
            if rng.random() < 0.5:
                end = int(rng.integers(start + 1, horizon + 1))
            if kind == "straggler":
                faults.append(
                    FaultSpec(
                        kind,
                        target=int(rng.integers(0, num_gpus)),
                        severity=float(rng.uniform(1.3, max_severity)),
                        start_step=start,
                        end_step=end,
                    )
                )
            elif kind == "nic_degrade":
                faults.append(
                    FaultSpec(
                        kind,
                        target=int(rng.integers(0, num_nodes)),
                        severity=float(rng.uniform(0.25, 0.9)),
                        start_step=start,
                        end_step=end,
                    )
                )
            else:  # rank_loss
                if len(lost) >= num_gpus - 1:
                    continue  # keep at least one survivor
                target = int(rng.integers(0, num_gpus))
                if target in lost:
                    continue
                lost.add(target)
                faults.append(
                    FaultSpec(
                        kind, target=target, start_step=start, end_step=end
                    )
                )
        return cls(tuple(faults))
