"""Unit tests for Program construction and manipulation."""

import pytest

from repro.ir import DType, InstrKind, Program, TensorType, validate
from repro.ir.validate import ValidationError


def make_linear_program():
    p = Program("lin")
    x = p.add_input(TensorType((4, 8), DType.F16), "x")
    w = p.add_param(TensorType((8, 16), DType.F16), "w")
    (y,) = p.add("matmul", [x.id, w.id])
    p.outputs.append(y.id)
    return p, x, w, y


class TestProgramBasics:
    def test_add_infers_types(self):
        p, x, w, y = make_linear_program()
        assert p.type_of(y.id).shape == (4, 16)
        assert len(p) == 1

    def test_kind_defaults(self):
        p, x, w, y = make_linear_program()
        assert p.instructions[0].kind == InstrKind.FORWARD
        (z,) = p.add("allreduce", [y.id])
        assert p.instructions[-1].kind == InstrKind.COMM

    def test_producers_consumers(self):
        p, x, w, y = make_linear_program()
        (z,) = p.add("gelu", [y.id])
        prods = p.producers()
        cons = p.consumers()
        assert prods[y.id].op == "matmul"
        assert [c.op for c in cons[y.id]] == ["gelu"]

    def test_count_ops(self):
        p, x, w, y = make_linear_program()
        p.add("gelu", [y.id])
        p.add("gelu", [p.instructions[-1].outputs[0]])
        assert p.count_ops() == {"matmul": 1, "gelu": 2}

    def test_clone_independent(self):
        p, x, w, y = make_linear_program()
        c = p.clone()
        c.add("gelu", [y.id])
        assert len(c) == 2 and len(p) == 1
        # cloned programs allocate fresh non-conflicting value ids
        v = c.new_value(TensorType((1,), DType.F16))
        assert v.id not in p.values

    def test_dump_readable(self):
        p, *_ = make_linear_program()
        text = p.dump()
        assert "matmul" in text and "lin" in text

    def test_replace_order_rejects_non_permutation(self):
        p, x, w, y = make_linear_program()
        p.add("gelu", [y.id])
        with pytest.raises(ValueError):
            p.replace_order(p.instructions[:1])


class TestRemapUses:
    def test_remap_after_position(self):
        p, x, w, y = make_linear_program()
        (g1,) = p.add("gelu", [y.id])
        (g2,) = p.add("gelu", [y.id])
        (alt,) = p.add("relu", [y.id])
        # remap uses of y -> alt, but only from position 3 on (i.e. nothing)
        p.remap_uses({y.id: alt.id}, start=len(p.instructions))
        assert p.instructions[1].inputs == (y.id,)

    def test_remap_updates_outputs_and_grads(self):
        p, x, w, y = make_linear_program()
        (alt,) = p.add("gelu", [y.id])
        p.grads[w.id] = y.id
        p.remap_uses({y.id: alt.id}, start=0)
        assert p.outputs == [alt.id]
        assert p.grads[w.id] == alt.id


class TestValidation:
    def test_valid_program_passes(self):
        p, *_ = make_linear_program()
        validate(p)

    def test_use_before_def_rejected(self):
        p, x, w, y = make_linear_program()
        (g,) = p.add("gelu", [y.id])
        p.instructions.reverse()
        with pytest.raises(ValidationError):
            validate(p)

    def test_unknown_value_rejected(self):
        p, x, w, y = make_linear_program()
        bad = p.instructions[0].with_(inputs=(9999, w.id))
        p.instructions[0] = bad
        with pytest.raises(ValidationError):
            validate(p)

    def test_type_mismatch_rejected(self):
        p, x, w, y = make_linear_program()
        # lie about the output type
        lying = p.new_value(TensorType((1, 1), DType.F16), "bad")
        p.instructions[0] = p.instructions[0].with_(outputs=(lying.id,))
        p.outputs = [lying.id]
        with pytest.raises(ValidationError):
            validate(p)

    def test_ssa_violation_rejected(self):
        p, x, w, y = make_linear_program()
        dup = p.instructions[0].with_()
        p.instructions.append(dup)  # redefines y
        with pytest.raises(ValidationError):
            validate(p)
