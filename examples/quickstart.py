#!/usr/bin/env python
"""Quickstart: optimize an MoE training graph with Lancet and measure it.

Builds the paper's GPT2-S-MoE model for a 16-GPU A100 cluster, runs both
Lancet passes, and compares the simulated iteration time and exposed
(non-overlapped) all-to-all time against the unoptimized schedule.

Run:  python examples/quickstart.py

This is the script version of docs/TUTORIAL.md steps 1-3; the tutorial
continues into skew-aware planning and online re-optimization.
"""

from repro import (
    ClusterSpec,
    GPT2MoEConfig,
    LancetOptimizer,
    SimulationConfig,
    SyntheticRoutingModel,
    build_training_graph,
    simulate_program,
)


def main() -> None:
    # 1. Build the training-iteration IR (forward + backward + SGD) for
    #    GPT2-S-MoE: 12 layers, every other FFN replaced by an MoE layer,
    #    two experts per GPU (paper Sec. 7).
    cfg = GPT2MoEConfig.gpt2_s_moe()
    graph = build_training_graph(cfg, batch=24, seq=512, num_gpus=16)
    print(f"model: {cfg.name}, {len(graph.program)} IR instructions, "
          f"{cfg.num_experts(16)} experts, capacity {graph.moe_layers and cfg.capacity(24, 512, 16)}")

    # 2. A 2-node p4de cluster (8x A100 + 4x100 Gbps NICs per node).
    cluster = ClusterSpec.p4de(num_nodes=2)

    # 3. Run Lancet: dW schedule pass + operator partition pass.
    optimizer = LancetOptimizer(cluster)
    optimized, report = optimizer.optimize(graph)
    print(f"\nLancet optimization took {report.optimization_seconds:.2f}s")
    print(f"  dW instructions moved: {report.dw_schedule.num_dw_moved}"
          f"/{report.dw_schedule.num_dw_total}")
    print(f"  partition plans: {[(p.parts) for p in report.partition.plans]} "
          f"(one pipeline per MoE layer)")
    print(f"  predicted iteration time: {report.predicted_iteration_ms:.1f} ms")

    # 4. Simulate one iteration of each schedule on the cluster model.
    baseline_sim = SimulationConfig(
        cluster=cluster, padded_a2a=True, routing=SyntheticRoutingModel(seed=1)
    )
    lancet_sim = SimulationConfig(
        cluster=cluster, padded_a2a=False, routing=SyntheticRoutingModel(seed=1)
    )
    before = simulate_program(graph.program, config=baseline_sim)
    after = simulate_program(optimized, config=lancet_sim)

    b0, b1 = before.breakdown(), after.breakdown()
    e0 = before.exposed_time_of({"all_to_all"})
    e1 = after.exposed_time_of({"all_to_all"})
    print(f"\n{'':16s}{'baseline':>12s}{'lancet':>12s}")
    print(f"{'iteration (ms)':16s}{b0.makespan:12.1f}{b1.makespan:12.1f}")
    print(f"{'exposed a2a (ms)':16s}{e0:12.1f}{e1:12.1f}")
    print(f"{'comm-only (ms)':16s}{b0.comm_only:12.1f}{b1.comm_only:12.1f}")
    print(f"{'overlap (ms)':16s}{b0.overlapped:12.1f}{b1.overlapped:12.1f}")
    print(f"\nend-to-end speedup: {b0.makespan / b1.makespan:.2f}x"
          f"   (paper: up to 1.3x)")
    print(f"non-overlapped a2a reduction: {100 * (1 - e1 / e0):.0f}%"
          f"   (paper: up to 77%)")


if __name__ == "__main__":
    main()
