"""Figure 13: iteration-time decomposition on 4 nodes (32 GPUs).

Paper: stacked bars of non-overlapped communication / overlap /
non-overlapped computation per framework, on both clusters and models.
Key claims: Lancet cuts non-overlapped communication by 66-83% vs
Tutel/RAF; Lancet's *total* computation can exceed RAF's (partition
overhead) while its total communication is lower (irregular all-to-alls
transmit no padding).
"""

from __future__ import annotations

from ..formatting import format_table
from ..harness import Setting, run_setting
from .common import FigureResult


def run(
    models=("GPT2-S-MoE", "GPT2-L-MoE"),
    clusters=("v100", "a100"),
    num_gpus: int = 32,
    frameworks=("lancet", "tutel", "raf", "deepspeed"),
) -> FigureResult:
    rows = []
    reductions = {}
    for cluster in clusters:
        for model in models:
            group = {}
            for fw in frameworks:
                m = run_setting(
                    Setting(
                        model=model,
                        cluster_kind=cluster,
                        num_gpus=num_gpus,
                        framework=fw,
                    )
                )
                group[fw] = m
                rows.append(
                    {
                        "cluster": cluster,
                        "model": model,
                        "framework": fw,
                        "comm_only_ms": m.comm_only_ms,
                        "overlap_ms": m.overlap_ms,
                        "comp_only_ms": m.comp_only_ms,
                        "iteration_ms": m.iteration_ms,
                        "comm_total_ms": m.comm_only_ms + m.overlap_ms,
                        "comp_total_ms": m.comp_only_ms + m.overlap_ms,
                    }
                )
            for base in ("raf", "tutel"):
                if base in group:
                    red = 1.0 - group["lancet"].comm_only_ms / max(
                        group[base].comm_only_ms, 1e-9
                    )
                    reductions[(cluster, model, base)] = red

    table = format_table(
        [
            "Cluster",
            "Model",
            "Framework",
            "CommOnly",
            "Overlap",
            "CompOnly",
            "Total",
        ],
        [
            [
                r["cluster"],
                r["model"],
                r["framework"],
                r["comm_only_ms"],
                r["overlap_ms"],
                r["comp_only_ms"],
                r["iteration_ms"],
            ]
            for r in rows
        ],
        title=f"Fig. 13 - iteration decomposition ({num_gpus} GPUs)",
    )
    by_base = {}
    for (cluster, model, base), red in reductions.items():
        by_base.setdefault(base, []).append(red)
    notes = {
        "max_reduction_vs_raf": max(by_base.get("raf", [0.0])),
        "max_reduction_vs_tutel": max(by_base.get("tutel", [0.0])),
        "paper": "non-overlapped comm down 69-83% vs RAF, 66-77% vs Tutel",
        "reductions": {
            f"{c}/{m}/vs-{b}": red for (c, m, b), red in reductions.items()
        },
    }
    return FigureResult(
        "fig13", "iteration time decomposition", rows, table, notes
    )
