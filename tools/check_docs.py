#!/usr/bin/env python3
"""Documentation hygiene checker (run by the CI ``docs`` job).

Three checks over the repo's markdown:

1. **Intra-repo links resolve.**  Every relative markdown link target
   (``[text](path)``, ``path`` not a URL or pure anchor) must exist on
   disk, relative to the file containing it.
2. **Python snippets compile.**  Every fenced ``python`` block in the
   checked files must at least byte-compile (the ``docs`` CI job
   additionally *executes* the API.md / TUTORIAL.md / SERVING.md
   blocks via ``tests/test_docs_snippets.py``).
3. **Public symbols are documented.**  Every name in
   ``repro.api.__all__`` and ``repro.serving.__all__`` must be
   mentioned somewhere under ``docs/`` (or the README) -- the facade
   surface cannot silently outgrow its documentation.  (Runs only in
   default mode, where the full corpus is checked.)

Usage:  python tools/check_docs.py [files...]
        (no arguments = README.md + all of docs/)

Exit status: 0 = clean, 1 = problems found.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

#: [text](target) -- excluding images; target captured up to ) or space
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def default_files() -> list[pathlib.Path]:
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def check_links(path: pathlib.Path) -> list[str]:
    problems = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.is_relative_to(REPO):
            # escapes the checkout: a host-relative web link (e.g. the
            # CI badge's ../../actions/... URL), not a repo file
            continue
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO)}: broken link -> {target}")
    return problems


def python_blocks(path: pathlib.Path) -> list[str]:
    """Fenced ``python`` blocks of a markdown file, in document order.
    (Also used by ``tests/test_docs_snippets.py`` to *execute* them.)"""
    return _FENCE.findall(path.read_text())


def check_snippets(path: pathlib.Path) -> list[str]:
    problems = []
    for i, block in enumerate(python_blocks(path)):
        try:
            compile(block, f"{path.name}[block {i}]", "exec")
        except SyntaxError as err:
            problems.append(
                f"{path.relative_to(REPO)}: python block {i} does not "
                f"compile: {err}"
            )
    return problems


#: facade modules whose entire ``__all__`` must appear in the docs
_COVERED_MODULES = (
    "repro.api",
    "repro.serving",
    "repro.faults",
    "repro.placement",
    "repro.pipeline",
)


def check_symbol_coverage(files: list[pathlib.Path]) -> list[str]:
    """Every public facade symbol is mentioned in the doc corpus."""
    import importlib

    sys.path.insert(0, str(REPO / "src"))
    try:
        corpus = "\n".join(f.read_text() for f in files if f.exists())
        problems = []
        for module_name in _COVERED_MODULES:
            module = importlib.import_module(module_name)
            for name in module.__all__:
                if name not in corpus:
                    problems.append(
                        f"{module_name}.{name} is public but never "
                        f"mentioned in README.md or docs/"
                    )
        return problems
    finally:
        sys.path.remove(str(REPO / "src"))


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    files = [pathlib.Path(a) for a in args] or default_files()
    problems: list[str] = []
    for f in files:
        if not f.exists():
            problems.append(f"missing file: {f}")
            continue
        problems += check_links(f)
        problems += check_snippets(f)
    if not args:  # full-corpus mode: coverage is meaningful
        problems += check_symbol_coverage(files)
    if problems:
        print("documentation problems:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    coverage = "" if args else ", public symbols covered"
    print(
        f"docs OK: {len(files)} files, links resolve, snippets "
        f"compile{coverage}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
