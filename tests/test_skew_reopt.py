"""Skew-aware cost model + online re-optimization loop.

Covers the acceptance criteria of the skew-aware subsystem:

- routing signatures summarize realized dispatch distributions;
- under uniform routing the skew-aware machinery reduces to the legacy
  static-shape approximation *bit-for-bit* (plans and predictions);
- under hot-expert routing (bottleneck >= 2x) the skew-aware plan's
  per-device simulated iteration time beats the uniform plan's;
- prediction caches key on the routing signature, so stale
  uniform-routing entries are never reused after re-optimization;
- :class:`ReoptimizingTrainer` re-plans on drift, caches plans by
  signature key, records wall time, and never perturbs the numeric
  training trajectory.
"""

import numpy as np
import pytest

from repro import GPT2MoEConfig, build_training_graph
from repro.core import LancetOptimizer
from repro.runtime import (
    GroundTruthCost,
    RoutingSignature,
    SimulationConfig,
    SyntheticRoutingModel,
    UniformRoutingModel,
    observed_routing_signatures,
    simulate_cluster,
)
from repro.train import ReoptimizingTrainer, Trainer

HOT = dict(concentration=0.5, hot_experts=1, hot_boost=0.7)


@pytest.fixture(scope="module")
def small_graph():
    cfg = GPT2MoEConfig.gpt2_s_moe(num_layers=4)
    return build_training_graph(cfg, batch=8, seq=256, num_gpus=16)


class TestRoutingSignature:
    def test_uniform_detection(self):
        sig = RoutingSignature.uniform(8)
        assert sig.is_uniform and sig.bottleneck == 1.0

    def test_from_balanced_pair_bytes_is_exactly_uniform(self):
        pair = np.full((4, 4), 100.0)
        sig = RoutingSignature.from_pair_bytes(pair)
        assert sig.load == (1.0, 1.0, 1.0, 1.0)

    def test_from_counts_hot_owner(self):
        # expert 0 (owned by device 0) receives double traffic
        counts = np.full((4, 4), 10)
        counts[:, 0] = 20
        sig = RoutingSignature.from_counts(counts, bytes_per_token=4)
        assert sig.bottleneck == max(sig.load) == sig.load[0]
        assert sig.load[0] > 1.0
        assert sig.mean_send_bytes == pytest.approx(50 * 4)

    def test_drift_and_key(self):
        a = RoutingSignature((1.0, 1.0), mean_send_bytes=1000.0)
        b = RoutingSignature((1.5, 0.5), mean_send_bytes=1000.0)
        assert a.drift_from(a) == 0.0
        assert a.drift_from(b) == pytest.approx(0.5)
        # volume changes count as drift even with identical shape
        c = RoutingSignature((1.0, 1.0), mean_send_bytes=500.0)
        assert a.drift_from(c) == pytest.approx(0.5)
        assert a.key() != b.key()
        assert a.key() == RoutingSignature(
            (1.0004, 0.9996), mean_send_bytes=1000.2
        ).key(digits=2)
        with pytest.raises(ValueError):
            a.drift_from(RoutingSignature.uniform(3))

    def test_validation(self):
        with pytest.raises(ValueError):
            RoutingSignature(())
        with pytest.raises(ValueError):
            RoutingSignature((1.0, -1.0))

    def test_fully_starved_device_is_legal(self):
        """Extreme clipping can leave a device with zero accepted
        traffic; that must summarize, not crash the observation step."""
        pair = np.array([[100.0, 0.0], [0.0, 0.0]])
        sig = RoutingSignature.from_pair_bytes(pair)
        assert sig.load[1] == 0.0
        assert sig.bottleneck == sig.load[0] == 2.0
        assert sig.drift_from(RoutingSignature.uniform(2)) > 0


class TestUniformReduction:
    """Under uniform routing everything must match the legacy path."""

    def test_estimates_bit_for_bit(self, small_graph, a100_16):
        opt_plain = LancetOptimizer(a100_16)
        opt_unif = LancetOptimizer(a100_16)
        sigs = opt_unif.observe_routing(small_graph, UniformRoutingModel())
        assert sigs and all(s.is_uniform for s in sigs.values())
        p = small_graph.program
        for instr in p.instructions:
            assert opt_unif.costs.duration_ms(instr, p) == (
                opt_plain.costs.duration_ms(instr, p)
            )

    def test_plans_and_predictions_bit_for_bit(self, small_graph, a100_16):
        opt_plain = LancetOptimizer(a100_16)
        prog_plain, rep_plain = opt_plain.optimize(small_graph)
        opt_unif = LancetOptimizer(a100_16)
        opt_unif.observe_routing(small_graph, UniformRoutingModel())
        prog_unif, rep_unif = opt_unif.optimize(small_graph)

        key = lambda ins: (ins.op, ins.partition, tuple(ins.inputs))
        assert list(map(key, prog_plain.instructions)) == list(
            map(key, prog_unif.instructions)
        )
        assert (
            rep_plain.predicted_iteration_ms == rep_unif.predicted_iteration_ms
        )
        assert not rep_plain.skew_aware and rep_unif.skew_aware


class TestSkewAwareAccuracy:
    def test_signature_matches_ground_truth_realization(
        self, small_graph, a100_16
    ):
        """Signatures come from the exact realization the per-device
        simulator prices, so hotness must match the realized spread."""
        routing = SyntheticRoutingModel(seed=1, **HOT)
        config = SimulationConfig(
            cluster=a100_16, padded_a2a=False, routing=routing
        )
        sigs = observed_routing_signatures(small_graph.program, config)
        assert sigs
        assert max(s.bottleneck for s in sigs.values()) >= 2.0

    def test_skew_estimate_closer_to_cluster_ground_truth(
        self, small_graph, a100_16
    ):
        """Per collective: the skew-conditioned estimate lands nearer the
        device-resolved completion time than the uniform approximation."""
        routing = SyntheticRoutingModel(seed=1, **HOT)
        config = SimulationConfig(
            cluster=a100_16, padded_a2a=False, routing=routing
        )
        gt = GroundTruthCost(config)
        opt_unif = LancetOptimizer(a100_16)
        opt_skew = LancetOptimizer(a100_16)
        opt_skew.observe_routing(small_graph, routing)

        p = small_graph.program
        seen = set()
        for instr in p.instructions:
            if instr.op != "all_to_all":
                continue
            layer = instr.attrs.get("moe_layer")
            if layer in seen:
                continue
            seen.add(layer)
            real = float(gt.collective_device_times(instr, p).max())
            err_unif = abs(opt_unif.costs.duration_ms(instr, p) - real)
            err_skew = abs(opt_skew.costs.duration_ms(instr, p) - real)
            assert err_skew < err_unif
        assert seen


class TestSkewAwarePlanWins:
    def test_hot_routing_beats_uniform_plan(self, small_graph, a100_16):
        """Acceptance: at >= 2x hotness the skew-aware plan's simulated
        per-device iteration time beats the uniform-approximation plan."""
        routing = SyntheticRoutingModel(seed=1, **HOT)

        opt_unif = LancetOptimizer(a100_16)
        prog_unif, _ = opt_unif.optimize(small_graph)
        opt_skew = LancetOptimizer(a100_16)
        sigs = opt_skew.observe_routing(small_graph, routing)
        prog_skew, rep_skew = opt_skew.optimize(small_graph)

        assert max(s.bottleneck for s in sigs.values()) >= 2.0
        assert rep_skew.skew_aware
        assert rep_skew.dw_schedule.skew_aware
        assert rep_skew.partition.skew_aware

        def iter_ms(prog):
            sim = SimulationConfig(
                cluster=a100_16, padded_a2a=False, routing=routing
            )
            return simulate_cluster(prog, config=sim).makespan

        assert iter_ms(prog_skew) < iter_ms(prog_unif)


class TestSignatureKeyedCaches:
    def test_no_stale_entries_across_retargeting(self, small_graph, a100_16):
        """The same estimator, re-targeted uniform -> hot -> uniform,
        must never serve an estimate cached under another signature."""
        routing = SyntheticRoutingModel(seed=1, **HOT)
        opt = LancetOptimizer(a100_16)
        p = small_graph.program
        a2a = next(
            i
            for i in p.instructions
            if i.op == "all_to_all" and i.attrs.get("irregular")
        )
        t_uniform = opt.costs.duration_ms(a2a, p)  # caches uniform entry
        sigs = opt.observe_routing(small_graph, routing)
        t_hot = opt.costs.duration_ms(a2a, p)
        assert t_hot != t_uniform  # stale uniform entry not reused
        opt.set_routing_signatures(None)
        assert opt.costs.duration_ms(a2a, p) == t_uniform
        opt.set_routing_signatures(sigs)
        assert opt.costs.duration_ms(a2a, p) == t_hot


class TestReoptimizingTrainer:
    @pytest.fixture(scope="class")
    def tiny_setup(self, tiny_graph, small_cluster):
        return tiny_graph, small_cluster

    def test_reoptimizes_on_drift_and_records_wall_time(self, tiny_setup):
        graph, cluster = tiny_setup
        tr = ReoptimizingTrainer(
            graph,
            LancetOptimizer(cluster),
            drift_threshold=0.0,
            cache_digits=1,
            seed=0,
        )
        tr.run(3)
        assert tr.num_reoptimizations >= 1
        misses = [e for e in tr.events if not e.cache_hit]
        assert misses and all(e.wall_seconds > 0 for e in misses)
        assert all(e.drift > 0 for e in tr.events)
        assert tr.reoptimization_seconds == pytest.approx(
            sum(e.wall_seconds for e in tr.events)
        )

    def test_plan_cache_hits_are_free(self, tiny_setup):
        graph, cluster = tiny_setup
        # quantize coarsely so every observation shares one cache key
        tr = ReoptimizingTrainer(
            graph,
            LancetOptimizer(cluster),
            drift_threshold=0.0,
            cache_digits=0,
            seed=0,
        )
        tr.run(4)
        hits = [e for e in tr.events if e.cache_hit]
        assert hits and all(e.wall_seconds == 0.0 for e in hits)
        assert len({e.signature_key for e in hits}) <= len(tr._plan_cache)

    def test_high_threshold_never_reoptimizes(self, tiny_setup):
        graph, cluster = tiny_setup
        tr = ReoptimizingTrainer(
            graph, LancetOptimizer(cluster), drift_threshold=1e9, seed=0
        )
        tr.run(3)
        assert tr.events == []

    def test_trajectory_bit_identical_to_static_schedule(self, tiny_setup):
        """Swapping re-optimized schedules mid-training must not change
        a single loss bit (Lancet's passes are numerically exact)."""
        graph, cluster = tiny_setup
        reopt = ReoptimizingTrainer(
            graph,
            LancetOptimizer(cluster),
            drift_threshold=0.0,
            cache_digits=1,
            seed=0,
        )
        results = reopt.run(4)
        assert reopt.num_reoptimizations >= 1  # schedules really swapped

        static_prog, _ = LancetOptimizer(cluster).optimize(graph)
        plain = Trainer(graph, program=static_prog, seed=0)
        baseline = plain.run(4)
        assert [r.losses for r in results] == [r.losses for r in baseline]
