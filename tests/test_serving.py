"""repro.serving: coalescing, nearest-signature hot swaps, publishing."""

from __future__ import annotations

import pytest

from repro.api import PlanStore, Scenario
from repro.serving import (
    NEAREST_PREDICTED_GAP_BOUND,
    PlanServer,
    compile_many,
)

SC = Scenario.preset("tiny/a100x8")


@pytest.fixture()
def store(tmp_path):
    return PlanStore(tmp_path / "plans")


class TestCoalescing:
    def test_identical_burst_runs_planner_once(self, store):
        with PlanServer(store) as server:
            plans = server.compile_many([SC] * 16)
        assert len(plans) == 16
        assert len({p.fingerprint for p in plans}) == 1
        assert server.counters["planner_runs"] == 1
        assert server.counters["coalesced"] == 15
        assert server.counters["requests"] == 16

    def test_distinct_workloads_do_not_coalesce(self, store):
        other = SC.with_(num_gpus=16)
        with PlanServer(store) as server:
            plans = server.compile_many([SC, other])
        assert plans[0].fingerprint != plans[1].fingerprint
        assert server.counters["planner_runs"] == 2
        assert server.counters["coalesced"] == 0

    def test_repeat_hits_memory_then_disk(self, store):
        with PlanServer(store) as server:
            assert server.serve(SC).origin == "planned"
            assert server.serve(SC).origin == "memory"
        # a fresh server over the same directory is warm from disk
        with PlanServer(store) as other:
            result = other.serve(SC)
        assert result.origin == "store"
        assert result.plan.from_store

    def test_closed_server_rejects_requests(self, store):
        server = PlanServer(store)
        server.close()
        with pytest.raises(RuntimeError):
            server.submit(SC)

    def test_worker_error_propagates_and_counts(self, store, monkeypatch):
        import repro.serving.server as server_mod

        def boom(*args, **kwargs):
            raise RuntimeError("planner exploded")

        monkeypatch.setattr(server_mod, "plan_resolved", boom)
        with PlanServer(store) as server:
            future = server.submit(SC)
            with pytest.raises(RuntimeError, match="planner exploded"):
                future.result()
            assert server.counters["errors"] == 1
            assert server.stats()["inflight"] == 0


class TestNearestServing:
    def test_nearest_answer_then_hot_swap(self, store):
        drifted = SC.with_(routing_seed=5)
        with PlanServer(store) as server:
            server.serve(SC)
            result = server.serve(drifted)
            assert result.origin == "nearest"
            assert 0 < result.distance <= server.max_distance

            server.drain()
            assert server.counters["hot_swaps"] == 1
            (event,) = server.events
            assert event.distance == result.distance
            assert event.seconds > 0
            assert event.predicted_gap <= NEAREST_PREDICTED_GAP_BOUND

            # the exact re-plan was swapped into the memory cache...
            after = server.serve(drifted)
            assert after.origin == "memory"
            assert (
                after.plan.predicted_iteration_ms == event.exact_predicted_ms
            )
        # ...and into the shared store (exact bucket, no nearest needed)
        with PlanServer(store, nearest=False) as other:
            assert other.serve(drifted).origin == "store"

    def test_identical_probes_share_one_background_replan(self, store):
        drifted = SC.with_(routing_seed=5)
        with PlanServer(store, memory_cache_size=0) as server:
            server.serve(SC)
            runs_before = server.counters["planner_runs"]
            first = server.serve(drifted)
            second = server.serve(drifted)
            assert {first.origin, second.origin} <= {"nearest", "store"}
            server.drain()
            # one exact re-plan serves every probe of the same bucket
            assert server.counters["planner_runs"] == runs_before + 1
            assert server.counters["hot_swaps"] == 1

    def test_out_of_radius_plans_cold(self, store):
        with PlanServer(store, max_distance=1e-9) as server:
            server.serve(SC)
            result = server.serve(SC.with_(routing_seed=5))
        assert result.origin == "planned"
        assert server.counters["hot_swaps"] == 0

    def test_nearest_disabled_plans_cold(self, store):
        with PlanServer(store, nearest=False) as server:
            server.serve(SC)
            result = server.serve(SC.with_(routing_seed=5))
        assert result.origin == "planned"
        assert server.counters["nearest_hits"] == 0


class TestCompileMany:
    def test_requires_store(self):
        with pytest.raises(TypeError, match="requires a PlanStore"):
            compile_many([SC])

    def test_returns_plans_in_input_order(self, store):
        drifted = SC.with_(routing_seed=7)
        plans = compile_many([SC, drifted, SC], store=store)
        assert len(plans) == 3
        assert plans[0].scenario == SC
        assert plans[1].scenario == drifted
        assert plans[2].fingerprint == plans[0].fingerprint
        # both buckets persisted for the next caller
        assert len(store) == 2

    def test_stats_snapshot_is_json_friendly(self, store):
        import json

        with PlanServer(store) as server:
            server.compile_many([SC] * 3)
            snapshot = server.stats()
        assert snapshot["server"]["requests"] == 3
        assert snapshot["store_entries"] == 1
        json.dumps(snapshot)  # must not raise


class TestTrainerIntegration:
    def test_replans_publish_through_server(
        self, tiny_graph, small_cluster, tmp_path
    ):
        from repro import LancetOptimizer, ReoptimizingTrainer

        store = PlanStore(tmp_path / "plans")
        with PlanServer(store) as server:
            trainer = ReoptimizingTrainer(
                tiny_graph,
                LancetOptimizer(small_cluster),
                drift_threshold=0.0,
                seed=0,
                server=server,
            )
            assert trainer.store is store  # implied by server=
            trainer.run(3)
            assert trainer.num_reoptimizations >= 1
            assert server.counters["published"] >= 1
        assert len(store) >= 1

        # a second trainer over the same store reuses the published
        # re-plans instead of re-running the planner
        other = ReoptimizingTrainer(
            tiny_graph,
            LancetOptimizer(small_cluster),
            drift_threshold=0.0,
            seed=0,
            store=store,
        )
        other.run(3)
        assert any(e.store_hit for e in other.events)

    def test_published_replan_is_served_warm(
        self, tiny_graph, small_cluster, tmp_path
    ):
        from repro import LancetOptimizer, ReoptimizingTrainer

        store = PlanStore(tmp_path / "plans")
        with PlanServer(store) as server:
            trainer = ReoptimizingTrainer(
                tiny_graph,
                LancetOptimizer(small_cluster),
                drift_threshold=0.0,
                seed=0,
                server=server,
            )
            trainer.run(2)
            published = server.counters["published"]
            if not published:
                pytest.skip("no drift on this realization")
            # the publish path installs the plan in the server's memory
            # cache under its canonical store key
            key = store.key_for(
                trainer._ensure_fingerprint(),
                small_cluster,
                trainer._policy(),
                trainer.optimizer.framework,
                trainer.plan_signatures,
            )
            assert server._memory.get(key) is not None
