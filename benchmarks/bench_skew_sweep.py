"""Skew sweep: skew-aware plans vs the uniform approximation (extension).

For each hot-expert intensity, two Lancet plans are produced for the same
program -- one priced with the uniform static-shape approximation, one
conditioned on the observed routing signature -- and both are simulated
per-device under the same realized routing.  The skew-aware plan should
never lose, and must win under real hot-expert skew (hotness >= 2x).
"""

from conftest import run_figure
from repro.bench.figures import skew_sweep


def test_skew_sweep(benchmark):
    result = run_figure(benchmark, skew_sweep.run)
    by_boost = {r["hot_boost"]: r for r in result.rows}

    # a hot-expert scenario with >= 2x bottleneck load must be in the grid
    hot = [r for r in result.rows if r["hotness"] >= 2.0]
    assert hot, f"no hot scenario reached 2x (max {result.notes['max_hotness']})"
    # ... and there the skew-aware plan strictly beats the uniform plan
    for r in hot:
        assert r["iter_skew_plan_ms"] < r["iter_uniform_plan_ms"]

    # the skew-aware plan never loses, at any intensity
    for r in result.rows:
        assert r["iter_skew_plan_ms"] <= r["iter_uniform_plan_ms"] * 1.001

    # skew-aware prediction tracks the per-device ground truth more
    # closely than the uniform prediction under the strongest skew
    worst = by_boost[max(by_boost)]
    err_skew = abs(worst["predicted_skew_ms"] - worst["iter_skew_plan_ms"])
    err_unif = abs(
        worst["predicted_uniform_ms"] - worst["iter_uniform_plan_ms"]
    )
    assert err_skew < err_unif

    # re-optimization cost is recorded and small (paper Fig. 15 scale)
    assert all(0 < r["reopt_seconds"] < 60 for r in result.rows)
