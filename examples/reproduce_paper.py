#!/usr/bin/env python
"""Reproduce every figure of the paper in one run.

Runs all figure experiments (Fig. 2, 6, 11, 12, 13, 14, 15, 16 plus the
headline claims) and prints the tables.  Pass figure ids to run a
subset, and --fast for reduced grids:

    python examples/reproduce_paper.py              # everything
    python examples/reproduce_paper.py fig06 fig13  # a subset
    python examples/reproduce_paper.py --fast       # smaller grids

See docs/TUTORIAL.md for a guided walkthrough of the stack these
figures exercise.
"""

import sys
import time

from repro.bench import ALL_FIGURES

FAST_OVERRIDES = {
    "fig06": dict(range_points=(0.0, 1.0, 3.0, 8.0)),
    "fig11": dict(gpu_counts=(16, 32)),
    "fig12": dict(gpu_counts=(16, 32)),
    "fig14": dict(gpu_counts=(16, 32)),
    "fig15": dict(gpu_counts=(16, 32)),
    "fig16": dict(models=("GPT2-S-MoE",)),
    "headline": dict(gpu_counts=(16,)),
}


def main(argv: list[str]) -> None:
    fast = "--fast" in argv
    wanted = [a for a in argv if not a.startswith("-")]
    figures = {k: v for k, v in ALL_FIGURES.items() if not wanted or k in wanted}
    if not figures:
        raise SystemExit(f"unknown figures {wanted}; pick from {list(ALL_FIGURES)}")

    for name, runner in figures.items():
        kwargs = FAST_OVERRIDES.get(name, {}) if fast else {}
        t0 = time.perf_counter()
        result = runner(**kwargs)
        dt = time.perf_counter() - t0
        print("=" * 78)
        print(f"{result.figure}: {result.description}   ({dt:.1f}s)")
        print("=" * 78)
        print(result.table)
        if result.notes:
            print("\nnotes:")
            for k, v in result.notes.items():
                if k == "reductions":
                    continue
                print(f"  {k}: {v}")
        print()


if __name__ == "__main__":
    main(sys.argv[1:])
