"""Partition-axis inference: the constraint-satisfaction solver of
paper Sec. 5.2.

Given a candidate range of instructions, find one partition axis per SSA
value such that every instruction's (input axes, output axes) combination
is permitted by its rule set ``F_Z`` (:mod:`.rules`), values entering the
range are splittable from outside, and -- per the paper -- the same
tensor keeps the same axis everywhere (automatic here: one variable per
value).

The paper uses OR-Tools; the structure of these problems (a near-chain of
small-domain variables) makes a domain-propagation + backtracking solver
entirely sufficient, and keeps the reproduction dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...ir import AXIS_IRREGULAR as IRR
from ...ir import NOT_PARTITIONED as NP
from ...ir import Instruction, Program
from ...ir.tensor import is_route_type
from .rules import RuleContext, entry_domain, rules_for

#: preference order when branching: batch first, then irregular, then
#: other real axes; replication last (only boundary values may take NP).
_PREFERENCE = {0: 0, IRR: 1}


def _pref(axis: int) -> tuple[int, int]:
    return (_PREFERENCE.get(axis, 2), axis if axis >= 0 else 99)


@dataclass
class InferenceResult:
    """Solved axis assignment for one candidate range."""

    axes: dict[int, int]  # value id -> partition axis
    moe_only: bool  # context the solution was derived under

    def axis_of(self, vid: int) -> int:
        return self.axes.get(vid, NP)


#: ops that constitute the bare communication/expert pipeline; a range
#: containing only these may use capacity-axis partitioning (Tutel-style)
MOE_ONLY_OPS = frozenset({"all_to_all", "expert_ffn"})


def range_is_moe_only(instrs: list[Instruction]) -> bool:
    """Paper Sec. 5.2: capacity-axis rules apply iff the range covers only
    the all-to-all and expert computation."""
    return bool(instrs) and all(i.op in MOE_ONLY_OPS for i in instrs)


def infer_axes(
    instrs: list[Instruction],
    program: Program,
    ctx: RuleContext | None = None,
) -> InferenceResult | None:
    """Solve for partition axes over a candidate range.

    Returns None when no valid partitioning exists (e.g. the range
    contains a batch-dependent gate, or would need to split an MoE
    buffer irregularly from outside).
    """
    if not instrs:
        return None
    if ctx is None:
        ctx = RuleContext(moe_only=range_is_moe_only(instrs))

    produced: set[int] = set()
    for ins in instrs:
        produced.update(ins.outputs)

    # candidate rule tuples per instruction
    inst_rules: list[list[tuple[tuple[int, ...], tuple[int, ...]]]] = []
    for ins in instrs:
        in_types = [program.type_of(v) for v in ins.inputs]
        out_types = [program.type_of(v) for v in ins.outputs]
        cands = rules_for(ins, in_types, out_types, ctx)
        if not cands:
            return None
        inst_rules.append(cands)

    # variable domains: every value gets the full axis set, restricted by
    # the entry rules when it is produced outside the range
    domains: dict[int, set[int]] = {}
    for ins in instrs:
        for vid in list(ins.inputs) + list(ins.outputs):
            if vid not in domains:
                t = program.type_of(vid)
                full = set(range(t.rank)) | {NP, IRR}
                if vid not in produced:
                    full &= entry_domain(t, is_route_type(t))
                domains[vid] = full

    # arc-consistency propagation to fixpoint
    def propagate() -> bool:
        changed = True
        while changed:
            changed = False
            for ins, cands in zip(instrs, inst_rules):
                vids = list(ins.inputs) + list(ins.outputs)
                live = [
                    (ia, oa)
                    for ia, oa in cands
                    if all(
                        a in domains[vid]
                        for vid, a in zip(vids, list(ia) + list(oa))
                    )
                ]
                if not live:
                    return False
                if len(live) != len(cands):
                    cands[:] = live
                    changed = True
                # narrow each operand's domain to the union over live tuples
                for pos, vid in enumerate(vids):
                    allowed = {(list(ia) + list(oa))[pos] for ia, oa in live}
                    narrowed = domains[vid] & allowed
                    if not narrowed:
                        return False
                    if narrowed != domains[vid]:
                        domains[vid] = narrowed
                        changed = True
        return True

    if not propagate():
        return None

    # backtracking over any still-ambiguous values
    order = [v for v in domains if len(domains[v]) > 1]

    def solve(idx: int) -> bool:
        if idx == len(order):
            return True
        vid = order[idx]
        if len(domains[vid]) == 1:
            return solve(idx + 1)
        snapshot_domains = {v: set(d) for v, d in domains.items()}
        snapshot_rules = [list(c) for c in inst_rules]
        for axis in sorted(domains[vid], key=_pref):
            domains[vid] = {axis}
            if propagate() and solve(idx + 1):
                return True
            for v in domains:
                domains[v] = set(snapshot_domains[v])
            for c, snap in zip(inst_rules, snapshot_rules):
                c[:] = snap
        return False

    if not solve(0):
        return None

    axes = {v: next(iter(d)) for v, d in domains.items()}

    # sanity: every instruction must actually be partitioned
    for ins in instrs:
        if all(axes.get(o, NP) == NP for o in ins.outputs):
            return None
    return InferenceResult(axes=axes, moe_only=ctx.moe_only)
