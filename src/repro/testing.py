"""Small helpers shared by the test and benchmark suites.

Lives inside the package (rather than in a ``conftest.py``) so test
modules can import it unambiguously: ``tests/conftest.py`` and
``benchmarks/conftest.py`` are both imported under the module name
``conftest`` in pytest's rootdir mode, so ``from conftest import ...``
resolves to whichever directory was collected first.
"""

from __future__ import annotations


def fresh_values(values: list[dict]) -> list[dict]:
    """Deep-enough copy of per-device value dicts for one execution.

    The numeric executor mutates its environments in place; tests reuse
    one initialized value set across executions, so each run gets fresh
    top-level dicts (the tensors themselves are never written in place).
    """
    return [dict(v) for v in values]
